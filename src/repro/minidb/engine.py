"""The MiniDB engine facade: ``Engine.execute(sql) -> ResultSet``.

Dispatches parsed statements, owns the catalog and storage, enforces
constraints, maintains indexes, and implements the maintenance commands
(VACUUM/REINDEX/ANALYZE/CHECK TABLE/REPAIR TABLE) whose misbehaviour under
injected defects feeds the paper's *error oracle*.

Dialect behaviour implemented here (value typing at INSERT time):

* sqlite — type affinity applied to incoming values; PRIMARY KEY columns
  of ordinary rowid tables may hold NULL (the historical SQLite quirk);
* mysql — non-strict mode: out-of-range integers are clipped to the
  column type's range, strings coerce numerically;
* postgres — strict: type mismatches are errors, SERIAL columns
  auto-assign.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    CatalogError,
    ConstraintError,
    DBCrash,
    DBError,
    IntegrityError,
    UnsupportedError,
)
from repro.interp.base import EvalError, Interpreter
from repro.interp.mysql_sem import to_number, to_text as mysql_to_text
from repro.interp.sqlite_sem import apply_affinity, storage_compare
from repro.minidb import statements as st
from repro.minidb.bugs import BugRegistry
from repro.minidb.catalog import (
    MYSQL_INT_RANGES,
    Catalog,
    Column,
    Index,
    Statistics,
    Table,
    View,
)
from repro.minidb.engine_sem import build_engine_semantics
from repro.minidb.executor import SelectExecutor
from repro.minidb.parser import parse_statement
from repro.minidb.planner import AccessPath, Scope, bind
from repro.sqlast.nodes import BinaryOp, BinaryNode, ColumnNode, Expr, walk
from repro.values import NULL, SQLType, Value

DIALECTS = ("sqlite", "mysql", "postgres")

_PG_TYPE_SYNONYMS = {
    "INT": "INT4", "INTEGER": "INT4", "INT4": "INT4", "SERIAL": "INT4",
    "BIGINT": "INT8", "INT8": "INT8",
    "FLOAT8": "FLOAT8", "FLOAT": "FLOAT8", "DOUBLE": "FLOAT8",
    "REAL": "FLOAT8",
    "TEXT": "TEXT", "BOOL": "BOOL", "BOOLEAN": "BOOL", "BYTEA": "BYTEA",
}


def _same_pg_type(a: str | None, b: str | None) -> bool:
    ka = _PG_TYPE_SYNONYMS.get((a or "").upper().split()[0] if a else "",
                               a)
    kb = _PG_TYPE_SYNONYMS.get((b or "").upper().split()[0] if b else "",
                               b)
    return ka == kb


@dataclass
class ResultSet:
    """Rows returned by a statement (empty for DDL/DML)."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)

    def python_rows(self) -> list[tuple]:
        """Rows as plain Python values (None/int/float/str/bytes/bool)."""
        return [tuple(v.v for v in row) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


class Engine:
    """One MiniDB database instance."""

    def __init__(self, dialect: str = "sqlite",
                 bugs: Optional[BugRegistry] = None):
        if dialect not in DIALECTS:
            raise ValueError(f"unknown dialect: {dialect!r}")
        self.dialect = dialect
        self.bugs = bugs if bugs is not None else BugRegistry()
        self.catalog = Catalog()
        self.options: dict[str, Value] = {}
        self.semantics = build_engine_semantics(dialect, self.bugs)
        self.interp = Interpreter(self.semantics)
        self.statements_executed = 0
        self._snapshot = None
        #: sql -> (columns, rows) for top-level SELECTs; invalidated
        #: wholesale by any non-SELECT statement and bypassed entirely
        #: while plan forcing is active.
        self._select_cache: dict[str, tuple[list, list]] = {}
        #: (table name, visible name) -> full-scan SourceRow list.
        #: Distinct queries between writes re-scan the same relations;
        #: rebuilding one qualified-name env dict per row per query is
        #: the single hottest allocation in a hunt.  Cleared wholesale by
        #: any non-SELECT/EXPLAIN statement (see execute_statement);
        #: population is suspended while such a statement runs so a
        #: scan taken *before* its writes cannot linger.
        self._scan_cache: dict[tuple[str, str], list] = {}
        self._scan_caching = True
        #: Multi-plan forcing (repro.multiplan.hints.PlannerHints): set
        #: transiently by MiniDBConnection.with_plan around one query.
        #: None means "plan normally" — the permanent state of every
        #: engine outside a forced execution.
        self.hints = None
        #: True while hints.analyze=True synthesized statistics that no
        #: ANALYZE statement gathered — the trigger for the stale-stats
        #: join defect.
        self.hint_analyzed = False
        self._apply_option_defaults()

    def _apply_option_defaults(self) -> None:
        if self.dialect == "sqlite":
            self.options["case_sensitive_like"] = Value.integer(0)

    # ------------------------------------------------------------------ API --
    def execute(self, sql: str) -> ResultSet:
        """Parse and execute one statement.

        Raises :class:`~repro.errors.DBError` subclasses for engine
        errors and :class:`~repro.errors.DBCrash` for simulated crashes.
        """
        stmt = parse_statement(sql)
        self.statements_executed += 1
        if type(stmt) is st.Select and self.hints is None:
            # The pivot probes re-read identical SELECTs between DML-free
            # pivot rounds; cache hits must hand out fresh containers
            # because fault injection mutates returned row lists.  Forced
            # executions (multiplan/plantime) never come through here —
            # with_plan calls execute_statement directly.
            cached = self._select_cache.get(sql)
            if cached is not None:
                columns, rows = cached
                return ResultSet(columns=list(columns), rows=list(rows))
            result = self.execute_statement(stmt)
            if len(self._select_cache) >= 128:
                self._select_cache.clear()
            self._select_cache[sql] = (list(result.columns),
                                       list(result.rows))
            return result
        if not isinstance(stmt, (st.Select, st.Explain)):
            # Invalidate up front: a failing DDL/DML statement may still
            # have touched state before raising.
            self._select_cache.clear()
        return self.execute_statement(stmt)

    def execute_statement(self, stmt: st.Statement) -> ResultSet:
        if isinstance(stmt, st.Select):
            return SelectExecutor(self).execute(stmt)
        if isinstance(stmt, st.Explain):
            return self._explain(stmt)
        # Anything below may mutate catalog state.  Drop the scan cache
        # up front (a failing statement may still have touched state) and
        # keep it suspended for the duration: a scan performed *by* this
        # statement (e.g. CREATE VIEW validation, INSERT ... SELECT)
        # must not be remembered past the writes that follow it.
        self._scan_cache.clear()
        self._scan_caching = False
        try:
            return self._execute_mutating(stmt)
        finally:
            self._scan_caching = True

    def _execute_mutating(self, stmt: st.Statement) -> ResultSet:
        if isinstance(stmt, st.CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, st.CreateIndex):
            return self._create_index(stmt)
        if isinstance(stmt, st.CreateView):
            return self._create_view(stmt)
        if isinstance(stmt, st.CreateStatistics):
            return self._create_statistics(stmt)
        if isinstance(stmt, st.Drop):
            return self._drop(stmt)
        if isinstance(stmt, st.Insert):
            return self._atomic(self._insert, stmt)
        if isinstance(stmt, st.Update):
            return self._atomic(self._update, stmt)
        if isinstance(stmt, st.Delete):
            return self._atomic(self._delete, stmt)
        if isinstance(stmt, st.AlterTable):
            return self._atomic(self._alter, stmt)
        if isinstance(stmt, st.Maintenance):
            return self._maintenance(stmt)
        if isinstance(stmt, st.SetOption):
            return self._set_option(stmt)
        if isinstance(stmt, st.TransactionStmt):
            return self._transaction(stmt)
        raise UnsupportedError(f"unsupported statement: {stmt!r}")

    def _explain(self, stmt: st.Explain) -> ResultSet:
        """EXPLAIN [QUERY PLAN]: the chosen access paths as rows."""
        steps = SelectExecutor(self).explain(stmt.select)
        rows = [(Value.text(table), Value.text(kind),
                 Value.text(index) if index is not None else NULL,
                 Value.text(detail))
                for table, kind, index, detail in steps]
        return ResultSet(columns=["table", "kind", "index", "detail"],
                         rows=rows)

    def _atomic(self, handler, stmt) -> ResultSet:
        """Statement atomicity for DML: a failing statement must leave no
        partial effects (a multi-row INSERT failing on its second row
        must not keep the first), or replaying the success-only statement
        log would diverge from the original session.

        INSERT/UPDATE/DELETE never mutate row dicts, Column objects or
        index key tuples in place (UPDATE swaps in a fresh dict), so a
        shallow container snapshot suffices; ALTER rewrites rows and
        columns in place and keeps the deep copy.
        """
        if isinstance(stmt, st.AlterTable):
            backup = copy.deepcopy(self.catalog)
            try:
                return handler(stmt)
            except DBError:
                self.catalog = backup
                raise
        saved_tables = [(t, dict(t.rows), t.next_rowid, dict(t.serials),
                         dict(t.ever_null))
                        for t in self.catalog.tables.values()]
        saved_indexes = [(i, list(i.entries))
                         for i in self.catalog.indexes.values()]
        try:
            return handler(stmt)
        except DBError:
            for t, rows, next_rowid, serials, ever_null in saved_tables:
                t.rows = rows
                t.next_rowid = next_rowid
                t.serials = serials
                t.ever_null = ever_null
            for index, entries in saved_indexes:
                index.entries = entries
            raise

    # ------------------------------------------------------------ relations --
    def resolve_relation(self, name: str) -> Table:
        """A table, materialized view, or virtual schema table."""
        lowered = name.lower()
        if self.catalog.has_table(name):
            return self.catalog.table(name)
        if self.catalog.has_view(name):
            return self._materialize_view(self.catalog.view(name))
        if lowered == "sqlite_master" and self.dialect == "sqlite":
            return self._sqlite_master()
        if lowered in ("information_schema.tables", "pg_tables") and \
                self.dialect in ("mysql", "postgres"):
            return self._information_schema_tables()
        raise CatalogError(f"no such table: {name}")

    def _materialize_view(self, view: View) -> Table:
        result = SelectExecutor(self).execute(view.select)
        columns = []
        for name, item in zip(result.columns, view.select.items):
            # A view column projecting a plain base column inherits that
            # column's declared type and collation (SQLite derives view
            # column affinity/collation from the defining expression).
            source = self._view_item_source(view, item)
            if source is not None:
                columns.append(Column(name=name,
                                      type_name=source.type_name,
                                      collation=source.collation))
            else:
                columns.append(Column(name=name, type_name=None))
        table = Table(name=view.name, columns=columns)
        for row in result.rows:
            table.rows[table.next_rowid] = dict(zip(result.columns, row))
            table.next_rowid += 1
        return table

    def _view_item_source(self, view: View, item) -> Optional[Column]:
        if item.expr is None or not isinstance(item.expr, ColumnNode):
            return None
        for name in view.select.tables:
            if not self.catalog.has_table(name):
                continue
            table = self.catalog.table(name)
            if table.has_column(item.expr.column):
                return table.column(item.expr.column)
        return None

    def _sqlite_master(self) -> Table:
        table = Table(name="sqlite_master", columns=[
            Column("type", "TEXT"), Column("name", "TEXT"),
            Column("tbl_name", "TEXT")])
        rowid = 1
        for t in self.catalog.tables.values():
            table.rows[rowid] = {"type": Value.text("table"),
                                 "name": Value.text(t.name),
                                 "tbl_name": Value.text(t.name)}
            rowid += 1
        for idx in self.catalog.indexes.values():
            table.rows[rowid] = {"type": Value.text("index"),
                                 "name": Value.text(idx.name),
                                 "tbl_name": Value.text(idx.table)}
            rowid += 1
        for v in self.catalog.views.values():
            table.rows[rowid] = {"type": Value.text("view"),
                                 "name": Value.text(v.name),
                                 "tbl_name": Value.text(v.name)}
            rowid += 1
        table.next_rowid = rowid
        return table

    def _information_schema_tables(self) -> Table:
        table = Table(name="information_schema.tables", columns=[
            Column("table_name", "TEXT"), Column("table_type", "TEXT")])
        rowid = 1
        for t in self.catalog.tables.values():
            table.rows[rowid] = {"table_name": Value.text(t.name),
                                 "table_type": Value.text("BASE TABLE")}
            rowid += 1
        for v in self.catalog.views.values():
            table.rows[rowid] = {"table_name": Value.text(v.name),
                                 "table_type": Value.text("VIEW")}
            rowid += 1
        table.next_rowid = rowid
        return table

    # ---------------------------------------------------------------- scans --
    def scan_rows(self, table: Table,
                  path: AccessPath) -> list[tuple[int, dict]]:
        """Rows as (rowid, row_dict), in path order.

        PostgreSQL-style inheritance: scanning a parent also returns the
        child tables' rows projected onto the parent's columns.
        """
        if path.kind == "index-scan" and path.index is not None:
            return self._index_scan(table, path.index,
                                    forced=path.forced)
        rows = list(table.rows.items())
        if self.dialect == "postgres" and \
                self.catalog.has_table(table.name):
            for child in self.catalog.children_of(table.name):
                parent_cols = table.column_names()
                for rowid, row in child.rows.items():
                    projected = {c: row.get(c, NULL) for c in parent_cols}
                    rows.append((-rowid, projected))
        return rows

    def _index_scan(self, table: Table, index: Index,
                    forced: bool = False) -> list[tuple[int, dict]]:
        import functools

        entries = sorted(
            index.entries,
            key=functools.cmp_to_key(lambda a, b: self._key_cmp(a[0], b[0])))
        out = []
        seen = set()
        for _key, rowid in entries:
            if rowid in seen:
                continue
            seen.add(rowid)
            row = table.rows.get(rowid)
            if row is None:
                raise IntegrityError(self._malformed_message())
            out.append((rowid, row))
        if forced and out and \
                self.bugs.on("sqlite-forced-index-fencepost"):
            # Defect: the INDEXED BY cursor stops one entry early — the
            # key-largest row silently vanishes, but only on a *forced*
            # index scan, so the planner's own choices (and hence the
            # pivot-containment oracle's unforced stream) never see it.
            out.pop()
        return out

    def _malformed_message(self) -> str:
        if self.dialect == "sqlite":
            return "database disk image is malformed"
        if self.dialect == "mysql":
            return "Index for table is corrupt; try to repair it"
        return "could not read block: index is corrupted"

    def _key_cmp(self, a: tuple, b: tuple) -> int:
        for av, bv in zip(a, b):
            if av.is_null and bv.is_null:
                continue
            if av.is_null:
                return -1
            if bv.is_null:
                return 1
            try:
                cmp = storage_compare(av, bv)
            except KeyError:
                cmp = 0
            if cmp != 0:
                return cmp
        return 0

    # ------------------------------------------------------------------ DDL --
    def _create_table(self, stmt: st.CreateTable) -> ResultSet:
        if self.catalog.has_table(stmt.name) or \
                self.catalog.has_view(stmt.name):
            if stmt.if_not_exists:
                return ResultSet()
            raise CatalogError(f"table {stmt.name} already exists")
        if stmt.without_rowid and self.dialect != "sqlite":
            raise UnsupportedError("WITHOUT ROWID is SQLite-specific")
        if stmt.engine and self.dialect != "mysql":
            raise UnsupportedError("storage engines are MySQL-specific")
        if stmt.inherits and self.dialect != "postgres":
            raise UnsupportedError("INHERITS is PostgreSQL-specific")
        if self.dialect != "sqlite":
            for col in stmt.columns:
                if col.type_name is None:
                    raise DBError(f"column {col.name} lacks a type")
        seen = set()
        for col in stmt.columns:
            if col.name.lower() in seen:
                raise CatalogError(f"duplicate column name: {col.name}")
            seen.add(col.name.lower())

        columns = [Column(name=c.name, type_name=c.type_name,
                          not_null=c.not_null, collation=c.collation,
                          default=c.default, primary_key=c.primary_key,
                          unique=c.unique) for c in stmt.columns]
        pk_cols = [c.name for c in columns if c.primary_key]
        for constraint in stmt.constraints:
            for col_name in constraint.columns:
                if col_name.lower() not in seen:
                    raise CatalogError(f"no such column: {col_name}")
            if constraint.kind == "PRIMARY KEY":
                if pk_cols:
                    raise CatalogError("multiple primary keys for table")
                pk_cols = list(constraint.columns)
                for col in columns:
                    if col.name in pk_cols:
                        col.primary_key = True

        inherits = None
        if stmt.inherits:
            parent = self.catalog.table(stmt.inherits)
            # PostgreSQL merges same-named columns (parent's first) and
            # rejects children that redeclare a column with another type.
            merged: list[Column] = [copy.deepcopy(c) for c in parent.columns]
            by_name = {c.name.lower(): c for c in merged}
            for col in columns:
                existing = by_name.get(col.name.lower())
                if existing is None:
                    merged.append(col)
                elif not _same_pg_type(existing.type_name, col.type_name):
                    raise DBError(
                        f'child table "{stmt.name}" has different type '
                        f'for column "{col.name}"')
            columns = merged
            inherits = parent.name

        table = Table(name=stmt.name, columns=columns,
                      without_rowid=stmt.without_rowid,
                      engine=(stmt.engine or
                              ("INNODB" if self.dialect == "mysql"
                               else None)),
                      inherits=inherits, pk_columns=pk_cols)
        if stmt.without_rowid and not pk_cols:
            raise DBError("PRIMARY KEY missing on table " + stmt.name)
        self.catalog.add_table(table)

        # Implicit indexes backing PRIMARY KEY / UNIQUE constraints.
        # An inherited child deliberately gets none for the parent's PK —
        # that is PostgreSQL's documented inheritance caveat (Listing 15).
        counter = 1
        if pk_cols and not inherits:
            self._add_implicit_index(table, pk_cols, counter)
            counter += 1
        for col in stmt.columns:
            if col.unique:
                self._add_implicit_index(table, [col.name], counter)
                counter += 1
        for constraint in stmt.constraints:
            if constraint.kind == "UNIQUE":
                self._add_implicit_index(table, constraint.columns, counter)
                counter += 1
        return ResultSet()

    def _add_implicit_index(self, table: Table, cols: list[str],
                            ordinal: int) -> None:
        exprs = []
        for name in cols:
            column = table.column(name)
            exprs.append(st.IndexedExpr(
                expr=ColumnNode(table=table.name, column=column.name,
                                collation=column.collation,
                                affinity=column.affinity
                                if self.dialect == "sqlite" else None),
                collation=column.collation))
        index = Index(name=f"{table.name}_autoindex_{ordinal}",
                      table=table.name, exprs=exprs, unique=True,
                      implicit=True)
        self.catalog.add_index(index)

    def _create_index(self, stmt: st.CreateIndex) -> ResultSet:
        table = self.catalog.table(stmt.table)
        if stmt.name.lower() in self.catalog.indexes:
            if stmt.if_not_exists:
                return ResultSet()
            raise CatalogError(f"index {stmt.name} already exists")
        if stmt.where is not None and self.dialect == "mysql":
            raise UnsupportedError("MySQL does not support partial indexes")
        scope = Scope([(table.name, table)], self.dialect)
        exprs = []
        for indexed in stmt.exprs:
            bound = bind(indexed.expr, scope)
            if indexed.collation is not None:
                bound = self._with_collation(bound, indexed.collation)
            exprs.append(st.IndexedExpr(expr=bound,
                                        collation=indexed.collation,
                                        descending=indexed.descending))
        where = bind(stmt.where, scope) if stmt.where is not None else None
        index = Index(name=stmt.name, table=table.name, exprs=exprs,
                      unique=stmt.unique, where=where)
        index.created_csl = self._option_int("case_sensitive_like")
        if self.bugs.on("pg-index-null-error"):
            lead = exprs[0].expr
            if isinstance(lead, ColumnNode) and \
                    getattr(table, "ever_null", {}).get(
                        lead.column.lower()):
                index.null_tainted = True
        # Populate entries from existing rows, enforcing uniqueness.
        for rowid, row in table.rows.items():
            self._index_insert(index, table, rowid, row,
                               enforce_unique=True)
        self.catalog.add_index(index)
        return ResultSet()

    @staticmethod
    def _with_collation(expr: Expr, collation: str) -> Expr:
        from repro.sqlast.nodes import CollateNode

        return CollateNode(expr, collation)

    def _create_view(self, stmt: st.CreateView) -> ResultSet:
        if self.catalog.has_view(stmt.name) or \
                self.catalog.has_table(stmt.name):
            if stmt.if_not_exists:
                return ResultSet()
            raise CatalogError(f"view {stmt.name} already exists")
        # Validate the view body eagerly, as real engines do.
        SelectExecutor(self).execute(stmt.select)
        self.catalog.add_view(View(name=stmt.name, select=stmt.select))
        return ResultSet()

    def _create_statistics(self, stmt: st.CreateStatistics) -> ResultSet:
        if self.dialect != "postgres":
            raise UnsupportedError("CREATE STATISTICS is "
                                   "PostgreSQL-specific")
        table = self.catalog.table(stmt.table)
        for col in stmt.columns:
            table.column(col)
        if stmt.name.lower() in self.catalog.statistics:
            raise CatalogError(f"statistics {stmt.name} already exist")
        self.catalog.statistics[stmt.name.lower()] = Statistics(
            name=stmt.name, table=table.name, columns=stmt.columns)
        return ResultSet()

    def _drop(self, stmt: st.Drop) -> ResultSet:
        if stmt.kind == "TABLE":
            self.catalog.drop_table(stmt.name, stmt.if_exists)
        elif stmt.kind == "INDEX":
            self.catalog.drop_index(stmt.name, stmt.if_exists)
        else:
            self.catalog.drop_view(stmt.name, stmt.if_exists)
        return ResultSet()

    # ------------------------------------------------------------------ DML --
    def _insert(self, stmt: st.Insert) -> ResultSet:
        table = self.catalog.table(stmt.table)
        columns = stmt.columns or table.column_names()
        for name in columns:
            table.column(name)
        for exprs in stmt.rows:
            if len(exprs) != len(columns):
                raise DBError(
                    f"table {table.name} has {len(columns)} columns "
                    f"but {len(exprs)} values were supplied")
            try:
                row = self._build_row(table, columns, exprs)
                self._insert_row(table, row,
                                 on_conflict=stmt.on_conflict)
            except ConstraintError:
                if stmt.on_conflict == "IGNORE":
                    continue
                raise
        return ResultSet()

    def _build_row(self, table: Table, columns: list[str],
                   exprs: list[Expr]) -> dict[str, Value]:
        provided = {}
        for name, expr in zip(columns, exprs):
            column = table.column(name)
            value = self._eval_const(expr)
            provided[column.name] = self._coerce(table, column, value)
        row = {}
        for column in table.columns:
            if column.name in provided:
                row[column.name] = provided[column.name]
            elif self._is_serial(column):
                row[column.name] = self._next_serial(table, column)
            elif column.default is not None:
                row[column.name] = self._coerce(
                    table, column, self._eval_const(column.default))
            else:
                row[column.name] = NULL
        return row

    def _eval_const(self, expr: Expr) -> Value:
        try:
            return self.interp.evaluate(expr, {})
        except EvalError as exc:
            raise DBError(str(exc)) from exc

    @staticmethod
    def _is_serial(column: Column) -> bool:
        return bool(column.type_name) and \
            column.type_name.upper() == "SERIAL"

    def _next_serial(self, table: Table, column: Column) -> Value:
        serials = getattr(table, "serials", None)
        if serials is None:
            serials = {}
            table.serials = serials
        value = serials.get(column.name, 0) + 1
        serials[column.name] = value
        return Value.integer(value)

    # -- value typing per dialect ---------------------------------------------
    def _coerce(self, table: Table, column: Column, value: Value) -> Value:
        if value.is_null:
            return NULL
        if self.dialect == "sqlite":
            return apply_affinity(value, column.affinity)
        if self.dialect == "mysql":
            return self._coerce_mysql(column, value)
        return self._coerce_postgres(column, value)

    def _coerce_mysql(self, column: Column, value: Value) -> Value:
        base = column.mysql_base_type
        if base in MYSQL_INT_RANGES or base == "SERIAL":
            lo, hi = MYSQL_INT_RANGES.get(base, MYSQL_INT_RANGES["BIGINT"])
            if column.mysql_unsigned:
                lo, hi = 0, (hi - lo)  # same width, shifted to unsigned
            num = to_number(value)
            assert num is not None
            if isinstance(num, float):
                num = int(num + 0.5) if num >= 0 else -int(-num + 0.5)
            return Value.integer(max(lo, min(hi, num)))
        if base in ("DOUBLE", "FLOAT", "REAL", "DECIMAL"):
            from repro.interp.mysql_sem import to_double

            num = to_double(value)
            assert num is not None
            return Value.real(num)
        if base in ("TEXT", "VARCHAR", "CHAR"):
            return Value.text(mysql_to_text(value))
        if base == "BLOB":
            if value.t is SQLType.BLOB:
                return value
            return Value.blob(mysql_to_text(value).encode("utf-8"))
        if base in ("BOOL", "BOOLEAN", "TINYINT"):
            num = to_number(value)
            assert num is not None
            return Value.integer(max(-128, min(127, int(num))))
        raise UnsupportedError(f"unsupported MySQL column type: {base}")

    def _coerce_postgres(self, column: Column, value: Value) -> Value:
        base = (column.type_name or "").upper().split()[0]
        type_err = DBError(
            f"column \"{column.name}\" is of type {base.lower()} but "
            f"expression is of type {value.t.value}")
        if base in ("INT", "INT4", "INTEGER", "SERIAL", "INT8", "BIGINT"):
            if value.t is SQLType.INTEGER:
                num = int(value.v)
            elif value.t is SQLType.REAL:
                num = round(float(value.v))
            else:
                raise type_err
            lo, hi = ((-(2**31), 2**31 - 1)
                      if base in ("INT", "INT4", "INTEGER", "SERIAL")
                      else (-(2**63), 2**63 - 1))
            if not (lo <= num <= hi):
                raise DBError(f"{'integer' if hi < 2**32 else 'bigint'} "
                              "out of range")
            return Value.integer(num)
        if base in ("FLOAT8", "FLOAT", "DOUBLE", "REAL"):
            if value.t in (SQLType.INTEGER, SQLType.REAL):
                return Value.real(float(value.v))
            raise type_err
        if base == "TEXT":
            if value.t is SQLType.TEXT:
                return value
            raise type_err
        if base in ("BOOL", "BOOLEAN"):
            if value.t is SQLType.BOOLEAN:
                return value
            if value.t is SQLType.INTEGER:
                return Value.boolean(int(value.v) != 0)
            raise type_err
        if base == "BYTEA":
            if value.t is SQLType.BLOB:
                return value
            raise type_err
        raise UnsupportedError(f"unsupported PostgreSQL column type: "
                               f"{base}")

    # -- row insertion with constraints -----------------------------------------
    def _insert_row(self, table: Table, row: dict[str, Value],
                    on_conflict: Optional[str] = None) -> int:
        self._check_not_null(table, row)
        conflicts = self._unique_conflicts(table, row, exclude_rowid=None)
        if conflicts:
            if on_conflict == "REPLACE":
                for conflict_rowid in conflicts:
                    self._delete_row(table, conflict_rowid)
            else:
                raise self._unique_error(table, row, conflicts)
        rowid = table.next_rowid
        table.next_rowid += 1
        table.rows[rowid] = row
        self._track_null_history(table, row)
        for index in self.catalog.indexes_on(table.name):
            self._index_insert(index, table, rowid, row,
                               enforce_unique=False)
        return rowid

    def _check_not_null(self, table: Table, row: dict[str, Value]) -> None:
        for column in table.columns:
            must = column.not_null
            if column.primary_key and (table.without_rowid
                                       or self.dialect != "sqlite"):
                # SQLite's historical quirk: PRIMARY KEY columns of
                # ordinary rowid tables may contain NULL.
                must = True
            if must and row[column.name].is_null:
                raise ConstraintError(self._not_null_message(table, column))

    def _not_null_message(self, table: Table, column: Column) -> str:
        if self.dialect == "sqlite":
            return f"NOT NULL constraint failed: {table.name}.{column.name}"
        if self.dialect == "mysql":
            return f"Column '{column.name}' cannot be null"
        return (f'null value in column "{column.name}" violates not-null '
                "constraint")

    def _track_null_history(self, table: Table,
                            row: dict[str, Value]) -> None:
        history = getattr(table, "ever_null", None)
        if history is None:
            history = {}
            table.ever_null = history
        for name, value in row.items():
            if value.is_null:
                history[name.lower()] = True

    def _unique_conflicts(self, table: Table, row: dict[str, Value],
                          exclude_rowid: Optional[int]) -> list[int]:
        """Rowids whose values collide with *row* on any unique index."""
        conflicts: list[int] = []
        for index in self.catalog.indexes_on(table.name):
            if not index.unique:
                continue
            key = self._index_key(index, table, row)
            if key is None or any(v.is_null for v in key):
                continue  # NULL components never conflict
            for other_rowid, other_row in table.rows.items():
                if other_rowid == exclude_rowid:
                    continue
                other_key = self._index_key(index, table, other_row)
                if other_key is None:
                    continue
                if self._keys_equal(index, key, other_key):
                    if other_rowid not in conflicts:
                        conflicts.append(other_rowid)
        return conflicts

    def _keys_equal(self, index: Index, a: tuple, b: tuple) -> bool:
        if any(v.is_null for v in a) or any(v.is_null for v in b):
            return False
        for indexed, av, bv in zip(index.exprs, a, b):
            collation = indexed.collation or "BINARY"
            if self.bugs.on("sqlite-reindex-unique") and \
                    self.dialect == "sqlite":
                # Defect: the insert-time uniqueness check ignores the
                # index collation (REINDEX later finds the duplicates).
                collation = "BINARY"
            if self.dialect == "mysql" and av.t is SQLType.TEXT \
                    and bv.t is SQLType.TEXT:
                collation = "NOCASE"
            try:
                if storage_compare(av, bv, collation) != 0:
                    return False
            except KeyError:
                if av != bv:
                    return False
        return True

    def _unique_error(self, table: Table, row: dict[str, Value],
                      conflicts: list[int]) -> ConstraintError:
        pk = table.pk_columns or [table.columns[0].name]
        if self.dialect == "sqlite":
            cols = ", ".join(f"{table.name}.{c}" for c in pk)
            return ConstraintError(f"UNIQUE constraint failed: {cols}")
        if self.dialect == "mysql":
            return ConstraintError(
                f"Duplicate entry for key '{table.name}.PRIMARY'")
        return ConstraintError(
            f'duplicate key value violates unique constraint '
            f'"{table.name}_pkey"')

    # -- index maintenance -------------------------------------------------------
    def _index_key(self, index: Index, table: Table,
                   row: dict[str, Value]) -> Optional[tuple]:
        """Key tuple for *row*, or None if a partial index excludes it."""
        env = {f"{table.name}.{name}": value for name, value in row.items()}
        if index.where is not None:
            try:
                if self.semantics.to_bool(
                        self.interp.evaluate(index.where, env)) is not True:
                    return None
            except EvalError as exc:
                raise DBError(str(exc)) from exc
        key = []
        for indexed in index.exprs:
            try:
                key.append(self.interp.evaluate(indexed.expr, env))
            except EvalError as exc:
                raise DBError(str(exc)) from exc
        return tuple(key)

    def _index_insert(self, index: Index, table: Table, rowid: int,
                      row: dict[str, Value],
                      enforce_unique: bool) -> None:
        key = self._index_key(index, table, row)
        if key is None:
            return
        if enforce_unique and index.unique and \
                not any(v.is_null for v in key):
            for existing_key, _rid in index.entries:
                if self._keys_equal(index, key, existing_key):
                    raise ConstraintError(self._unique_error(
                        table, row, []).message)
        if self.bugs.on("sqlite-nocase-unique-without-rowid") and \
                table.without_rowid and self._nocase_dedup_applies(index):
            # Defect: once a NOCASE index exists on a WITHOUT ROWID
            # table, the key comparator of the table's PK b-tree (and of
            # the NOCASE index itself) confuses collations and silently
            # drops case-variant duplicates — the row stays in the heap
            # (full scans see it) but is unreachable via index lookups.
            for existing_key, _rid in index.entries:
                if self._nocase_equal(key, existing_key):
                    return
        index.entries.append((key, rowid))

    def _nocase_dedup_applies(self, index: Index) -> bool:
        """Does the nocase-unique defect affect *index*?  Yes for the
        NOCASE index itself and, once one exists on the table, for the
        implicit PK index of the WITHOUT ROWID table."""
        if any(e.collation == "NOCASE" for e in index.exprs):
            return True
        if index.implicit:
            return any(
                any(e.collation == "NOCASE" for e in other.exprs)
                for other in self.catalog.indexes_on(index.table)
                if other is not index)
        return False

    @staticmethod
    def _nocase_equal(a: tuple, b: tuple) -> bool:
        for av, bv in zip(a, b):
            if av.is_null or bv.is_null:
                return False
            try:
                if storage_compare(av, bv, "NOCASE") != 0:
                    return False
            except KeyError:
                if av != bv:
                    return False
        return True

    def _index_remove(self, index: Index, rowid: int) -> None:
        index.entries = [(k, r) for k, r in index.entries if r != rowid]

    def _delete_row(self, table: Table, rowid: int,
                    leave_stale: bool = False) -> None:
        table.rows.pop(rowid, None)
        if leave_stale:
            return
        for index in self.catalog.indexes_on(table.name):
            self._index_remove(index, rowid)

    # -- UPDATE / DELETE ----------------------------------------------------------
    def _update(self, stmt: st.Update) -> ResultSet:
        table = self.catalog.table(stmt.table)
        scope = Scope([(table.name, table)], self.dialect)
        where = bind(stmt.where, scope) if stmt.where is not None else None
        assignments = [(table.column(name).name, bind(expr, scope))
                       for name, expr in stmt.assignments]
        has_real_pk = any(
            table.column(c).affinity == "REAL" for c in table.pk_columns
        ) if table.pk_columns and self.dialect == "sqlite" else False

        target_rowids = []
        for rowid, row in list(table.rows.items()):
            env = {f"{table.name}.{n}": v for n, v in row.items()}
            if where is not None:
                try:
                    keep = self.semantics.to_bool(
                        self.interp.evaluate(where, env))
                except EvalError as exc:
                    raise DBError(str(exc)) from exc
                if keep is not True:
                    continue
            target_rowids.append(rowid)

        for rowid in target_rowids:
            row = table.rows.get(rowid)
            if row is None:
                continue  # removed by an earlier OR REPLACE conflict
            env = {f"{table.name}.{n}": v for n, v in row.items()}
            new_row = dict(row)
            for name, expr in assignments:
                column = table.column(name)
                try:
                    value = self.interp.evaluate(expr, env)
                except EvalError as exc:
                    raise DBError(str(exc)) from exc
                new_row[name] = self._coerce(table, column, value)
            self._check_not_null(table, new_row)
            conflicts = self._unique_conflicts(table, new_row,
                                               exclude_rowid=rowid)
            if conflicts:
                if stmt.on_conflict == "REPLACE":
                    stale = (self.bugs.on("sqlite-real-pk-corrupt")
                             and has_real_pk)
                    for conflict in conflicts:
                        # Defect: the displaced row's index entries are
                        # not removed when the PK is REAL (Listing 10).
                        self._delete_row(table, conflict,
                                         leave_stale=stale)
                elif stmt.on_conflict == "IGNORE":
                    continue
                else:
                    raise self._unique_error(table, new_row, conflicts)
            table.rows[rowid] = new_row
            self._track_null_history(table, new_row)
            for index in self.catalog.indexes_on(table.name):
                self._index_remove(index, rowid)
                self._index_insert(index, table, rowid, new_row,
                                   enforce_unique=False)
        return ResultSet()

    def _delete(self, stmt: st.Delete) -> ResultSet:
        table = self.catalog.table(stmt.table)
        scope = Scope([(table.name, table)], self.dialect)
        where = bind(stmt.where, scope) if stmt.where is not None else None
        doomed = []
        for rowid, row in table.rows.items():
            if where is None:
                doomed.append(rowid)
                continue
            env = {f"{table.name}.{n}": v for n, v in row.items()}
            try:
                keep = self.semantics.to_bool(
                    self.interp.evaluate(where, env))
            except EvalError as exc:
                raise DBError(str(exc)) from exc
            if keep is True:
                doomed.append(rowid)
        for rowid in doomed:
            self._delete_row(table, rowid)
        return ResultSet()

    # -- ALTER -----------------------------------------------------------------
    def _alter(self, stmt: st.AlterTable) -> ResultSet:
        table = self.catalog.table(stmt.table)
        if stmt.action == "RENAME TO":
            assert stmt.new_name is not None
            self.catalog.rename_table(table.name, stmt.new_name)
            return ResultSet()
        if stmt.action == "RENAME COLUMN":
            return self._rename_column(table, stmt)
        if stmt.action == "ADD COLUMN":
            return self._add_column(table, stmt)
        raise UnsupportedError(f"unsupported ALTER action: {stmt.action}")

    def _rename_column(self, table: Table,
                       stmt: st.AlterTable) -> ResultSet:
        assert stmt.column is not None and stmt.new_name is not None
        column = table.column(stmt.column)
        if table.has_column(stmt.new_name):
            raise CatalogError(f"duplicate column name: {stmt.new_name}")
        old_name = column.name
        column.name = stmt.new_name
        for row in table.rows.values():
            row[stmt.new_name] = row.pop(old_name)
        if old_name in table.pk_columns:
            table.pk_columns = [stmt.new_name if c == old_name else c
                                for c in table.pk_columns]
        for index in self.catalog.indexes_on(table.name):
            if self.bugs.on("sqlite-rename-expr-index") and \
                    index.is_expression_index:
                # Defect: expression indexes are not rewritten — the
                # schema now refers to a nonexistent column (Listing 8).
                continue
            index.exprs = [st.IndexedExpr(
                expr=self._rename_in_expr(e.expr, old_name, stmt.new_name),
                collation=e.collation, descending=e.descending)
                for e in index.exprs]
            if index.where is not None:
                index.where = self._rename_in_expr(index.where, old_name,
                                                   stmt.new_name)
        return ResultSet()

    @staticmethod
    def _rename_in_expr(expr: Expr, old: str, new: str) -> Expr:
        from repro.sqlast.transform import transform

        def visit(node: Expr):
            if isinstance(node, ColumnNode) and \
                    node.column.lower() == old.lower():
                return ColumnNode(table=node.table, column=new,
                                  collation=node.collation,
                                  affinity=node.affinity)
            return None

        return transform(expr, visit)

    def _add_column(self, table: Table, stmt: st.AlterTable) -> ResultSet:
        assert stmt.column_def is not None
        col_def = stmt.column_def
        if table.has_column(col_def.name):
            raise CatalogError(f"duplicate column name: {col_def.name}")
        if self.bugs.on("sqlite-alter-add-crash") and table.without_rowid \
                and any(idx.is_expression_index
                        for idx in self.catalog.indexes_on(table.name)):
            raise DBCrash("segmentation fault in ALTER TABLE ADD COLUMN")
        if col_def.primary_key:
            raise DBError("Cannot add a PRIMARY KEY column")
        if col_def.not_null and col_def.default is None and table.rows:
            raise DBError("Cannot add a NOT NULL column with default "
                          "value NULL")
        column = Column(name=col_def.name, type_name=col_def.type_name,
                        not_null=col_def.not_null,
                        collation=col_def.collation,
                        default=col_def.default)
        table.columns.append(column)
        fill = NULL
        if col_def.default is not None:
            fill = self._coerce(table, column,
                                self._eval_const(col_def.default))
        for row in table.rows.values():
            row[column.name] = fill
        return ResultSet()

    # -- maintenance -------------------------------------------------------------
    def _maintenance(self, stmt: st.Maintenance) -> ResultSet:
        if stmt.command == "ANALYZE":
            targets = ([self.catalog.table(stmt.target)] if stmt.target
                       else list(self.catalog.tables.values()))
            for table in targets:
                table.analyzed = True
            return ResultSet()
        if stmt.command == "VACUUM":
            return self._vacuum(stmt)
        if stmt.command == "REINDEX":
            return self._reindex(stmt)
        if stmt.command == "CHECK TABLE":
            return self._check_table(stmt)
        if stmt.command == "REPAIR TABLE":
            return self._repair_table(stmt)
        if stmt.command == "DISCARD":
            if self.dialect != "postgres":
                raise UnsupportedError("DISCARD is PostgreSQL-specific")
            self.options.clear()
            return ResultSet()
        raise UnsupportedError(f"unknown maintenance command: "
                               f"{stmt.command}")

    def _vacuum(self, stmt: st.Maintenance) -> ResultSet:
        if self.dialect == "mysql":
            raise UnsupportedError("MySQL has no VACUUM")
        if self._snapshot is not None:
            # Both SQLite and PostgreSQL refuse VACUUM mid-transaction.
            raise DBError("cannot VACUUM from within a transaction"
                          if self.dialect == "sqlite" else
                          "VACUUM cannot run inside a transaction block")
        if self.dialect == "sqlite" and \
                self.bugs.on("sqlite-case-sensitive-like-index"):
            for index in self.catalog.indexes.values():
                if self._index_uses_like(index) and \
                        getattr(index, "created_csl", 0) != \
                        self._option_int("case_sensitive_like"):
                    raise IntegrityError(
                        f"malformed database schema ({index.name}) - "
                        "non-deterministic functions prohibited in index "
                        "expressions")
        if self.dialect == "postgres" and stmt.full and \
                self.bugs.on("pg-vacuum-int-overflow"):
            self._revalidate_expression_indexes()
        self._rebuild_indexes(check_unique=False)
        return ResultSet()

    @staticmethod
    def _index_uses_like(index: Index) -> bool:
        for indexed in index.exprs:
            for node in walk(indexed.expr):
                if isinstance(node, BinaryNode) and node.op in (
                        BinaryOp.LIKE, BinaryOp.NOT_LIKE):
                    return True
        return False

    def _revalidate_expression_indexes(self) -> None:
        """Defect (pg-vacuum-int-overflow): VACUUM FULL re-evaluates
        expression-index entries that the lazy index build skipped,
        surfacing arithmetic errors — including int4 overflow, which the
        int8-based evaluator only enforces here (Listing 18)."""
        for index in self.catalog.indexes.values():
            if not index.is_expression_index:
                continue
            table = self.catalog.table(index.table)
            int4_expr = self._references_int4(index, table)
            for row in table.rows.values():
                env = {f"{table.name}.{n}": v for n, v in row.items()}
                for indexed in index.exprs:
                    try:
                        value = self.interp.evaluate(indexed.expr, env)
                    except EvalError as exc:
                        raise DBError(str(exc)) from exc
                    if int4_expr and value.t is SQLType.INTEGER and \
                            not (-(2**31) <= int(value.v) <= 2**31 - 1):
                        raise DBError("integer out of range")

    @staticmethod
    def _references_int4(index: Index, table: Table) -> bool:
        int4_names = ("INT", "INT4", "INTEGER", "SERIAL")
        for indexed in index.exprs:
            for node in walk(indexed.expr):
                if isinstance(node, ColumnNode) and \
                        table.has_column(node.column):
                    base = (table.column(node.column).type_name or ""
                            ).upper().split()
                    if base and base[0] in int4_names:
                        return True
        return False

    def _reindex(self, stmt: st.Maintenance) -> ResultSet:
        if self.dialect == "mysql":
            raise UnsupportedError("MySQL has no REINDEX")
        self._rebuild_indexes(check_unique=True, only=stmt.target)
        return ResultSet()

    def _rebuild_indexes(self, check_unique: bool,
                         only: Optional[str] = None) -> None:
        for index in self.catalog.indexes.values():
            if only is not None and \
                    index.name.lower() != only.lower() and \
                    index.table.lower() != only.lower():
                continue
            table = self.catalog.table(index.table)
            for _key, rowid in index.entries:
                if rowid not in table.rows:
                    raise IntegrityError(self._malformed_message())
            fresh: list = []
            index.entries = []
            for rowid, row in table.rows.items():
                key = self._index_key(index, table, row)
                if key is None:
                    continue
                if check_unique and index.unique and \
                        not any(v.is_null for v in key):
                    for existing, _rid in fresh:
                        # REINDEX checks with the *correct* collation,
                        # catching duplicates a buggy insert path let in.
                        if self._keys_equal_correct(index, key, existing):
                            raise ConstraintError(
                                self._unique_error(table, row, []).message)
                fresh.append((key, rowid))
            index.entries = fresh

    def _keys_equal_correct(self, index: Index, a: tuple,
                            b: tuple) -> bool:
        for indexed, av, bv in zip(index.exprs, a, b):
            collation = indexed.collation or "BINARY"
            try:
                if storage_compare(av, bv, collation) != 0:
                    return False
            except KeyError:
                if av != bv:
                    return False
        return True

    def _check_table(self, stmt: st.Maintenance) -> ResultSet:
        if self.dialect != "mysql":
            raise UnsupportedError("CHECK TABLE is MySQL-specific")
        table = self.catalog.table(stmt.target or "")
        if stmt.for_upgrade and self.bugs.on("mysql-check-table-crash") \
                and any(idx.is_expression_index
                        for idx in self.catalog.indexes_on(table.name)):
            raise DBCrash("signal 11 in CHECK TABLE ... FOR UPGRADE")
        return ResultSet(columns=["Table", "Op", "Msg_type", "Msg_text"],
                         rows=[(Value.text(table.name),
                                Value.text("check"),
                                Value.text("status"), Value.text("OK"))])

    def _repair_table(self, stmt: st.Maintenance) -> ResultSet:
        if self.dialect != "mysql":
            raise UnsupportedError("REPAIR TABLE is MySQL-specific")
        table = self.catalog.table(stmt.target or "")
        if self.bugs.on("mysql-repair-memory-error") and \
                (table.engine or "").upper() == "MEMORY":
            raise DBError(f"Incorrect key file for table '{table.name}'; "
                          "try to repair it")
        return ResultSet(columns=["Table", "Op", "Msg_type", "Msg_text"],
                         rows=[(Value.text(table.name),
                                Value.text("repair"),
                                Value.text("status"), Value.text("OK"))])

    # -- options / transactions ---------------------------------------------------
    def _set_option(self, stmt: st.SetOption) -> ResultSet:
        name = stmt.name.lower()
        value = self._eval_const(stmt.value) if stmt.value is not None \
            else Value.integer(1)
        if self.dialect == "mysql" and \
                self.bugs.on("mysql-set-option-error") and \
                name == "key_cache_division_limit" and \
                value.t is SQLType.INTEGER and int(value.v) == 100:
            raise DBError("Incorrect arguments to SET")
        self.options[name] = value
        if self.dialect == "sqlite" and name == "case_sensitive_like":
            self.semantics.like_case_sensitive = bool(
                self._option_int("case_sensitive_like"))
        return ResultSet()

    def _option_int(self, name: str) -> int:
        value = self.options.get(name)
        if value is None or value.is_null:
            return 0
        if value.t is SQLType.INTEGER:
            return int(value.v)
        if value.t is SQLType.TEXT:
            lowered = str(value.v).lower()
            if lowered in ("true", "on", "yes"):
                return 1
            if lowered in ("false", "off", "no"):
                return 0
        return 0

    def _transaction(self, stmt: st.TransactionStmt) -> ResultSet:
        if stmt.action == "BEGIN":
            if self._snapshot is not None:
                raise DBError("cannot start a transaction within a "
                              "transaction")
            self._snapshot = copy.deepcopy(
                (self.catalog, self.options))
            return ResultSet()
        if self._snapshot is None:
            # COMMIT/ROLLBACK outside a transaction is a no-op error in
            # most shells; report it the SQLite way.
            raise DBError("cannot commit - no transaction is active"
                          if stmt.action == "COMMIT"
                          else "cannot rollback - no transaction is active")
        if stmt.action == "ROLLBACK":
            self.catalog, self.options = self._snapshot
        self._snapshot = None
        return ResultSet()
