"""MiniDB — a from-scratch relational engine, the system under test.

The paper evaluated PQS against live SQLite, MySQL and PostgreSQL builds.
Offline, MiniDB stands in for them: it is a real engine (SQL text in,
rows out) with three dialect personalities mirroring the semantic surfaces
on which the paper's bugs clustered, plus a fault-injection registry
(:mod:`repro.minidb.bugs`) whose defects are modeled one-for-one on bugs
the paper reports.  The PQS tool talks to MiniDB only through SQL — it
never inspects engine internals — so the oracle problem is the same as
against a production DBMS.

Architecture (one module per stage):

* :mod:`repro.minidb.tokens` / :mod:`repro.minidb.parser` — SQL front end,
  producing :mod:`repro.minidb.statements` objects whose expressions are
  shared :mod:`repro.sqlast` nodes;
* :mod:`repro.minidb.catalog` — schema objects (tables, columns, indexes,
  views) and name resolution;
* :mod:`repro.minidb.storage` — row storage and index structures;
* :mod:`repro.minidb.planner` — expression rewriting and access-path
  selection (where most injected optimizer bugs live);
* :mod:`repro.minidb.executor` — the SELECT pipeline;
* :mod:`repro.minidb.engine` — the public facade
  (:class:`~repro.minidb.engine.Engine`), statement dispatch, DML,
  constraints and maintenance commands.
"""

from repro.minidb.bugs import BUG_CATALOG, BugRegistry, InjectedBug
from repro.minidb.engine import Engine, ResultSet

__all__ = [
    "BUG_CATALOG",
    "BugRegistry",
    "Engine",
    "InjectedBug",
    "ResultSet",
]
