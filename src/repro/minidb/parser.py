"""Recursive-descent SQL parser for MiniDB.

One statement per :func:`parse_statement` call; :func:`parse_script` splits
on semicolons.  Expressions are parsed with precedence climbing into
:mod:`repro.sqlast` nodes (the same classes the PQS generator emits, which
gives the round-trip property ``parse(render(e)) == e`` up to column-binding
annotations — exercised heavily in the test suite).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.minidb import statements as st
from repro.minidb.tokens import Token, TokenType, tokenize
from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    BinaryOp,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    Expr,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
)
from repro.values import NULL, SQLType, Value, fits_int64

_COMPARE_OPS = {
    "=": BinaryOp.EQ, "==": BinaryOp.EQ, "!=": BinaryOp.NE,
    "<>": BinaryOp.NE, "<=>": BinaryOp.NULL_SAFE_EQ,
}
_INEQ_OPS = {"<": BinaryOp.LT, "<=": BinaryOp.LE, ">": BinaryOp.GT,
             ">=": BinaryOp.GE}
_BIT_OPS = {"&": BinaryOp.BITAND, "|": BinaryOp.BITOR, "<<": BinaryOp.SHL,
            ">>": BinaryOp.SHR}
_ADD_OPS = {"+": BinaryOp.ADD, "-": BinaryOp.SUB}
_MUL_OPS = {"*": BinaryOp.MUL, "/": BinaryOp.DIV, "%": BinaryOp.MOD}

#: Binding power per operator token for precedence climbing, spaced by 10
#: so "the next-tighter level" is ``prec + 10`` (matching the right
#: operand of each level in the old descent chain).
_OP_PREC: dict[str, tuple[int, BinaryOp]] = {}
for _ops, _prec in ((_COMPARE_OPS, 10), (_INEQ_OPS, 20), (_BIT_OPS, 30),
                    (_ADD_OPS, 40), (_MUL_OPS, 50)):
    for _text, _op in _ops.items():
        _OP_PREC[_text] = (_prec, _op)
_OP_PREC["||"] = (60, BinaryOp.CONCAT)
del _ops, _prec, _text, _op


class Parser:
    """Parses one SQL statement from a token stream."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def accept_kw(self, *names: str) -> bool:
        if self.cur.is_kw(*names):
            self.advance()
            return True
        return False

    def expect_kw(self, *names: str) -> Token:
        if not self.cur.is_kw(*names):
            raise ParseError(
                f"expected {'/'.join(names)}, got {self.cur.text!r} "
                f"near offset {self.cur.pos}")
        return self.advance()

    def accept_op(self, *ops: str) -> bool:
        if self.cur.is_op(*ops):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        if not self.cur.is_op(op):
            raise ParseError(f"expected {op!r}, got {self.cur.text!r} "
                             f"near offset {self.cur.pos}")
        return self.advance()

    def ident(self) -> str:
        tok = self.cur
        # Unreserved keywords may double as identifiers (ENGINE, KEY, ...).
        if tok.type in (TokenType.IDENT, TokenType.KEYWORD):
            self.advance()
            return tok.text
        raise ParseError(f"expected identifier, got {tok.text!r} "
                         f"near offset {tok.pos}")

    def at_end(self) -> bool:
        if self.cur.is_op(";"):
            self.advance()
        return self.cur.type is TokenType.EOF

    # -- statement dispatch ------------------------------------------------
    def parse_statement(self) -> st.Statement:
        tok = self.cur
        if tok.is_kw("CREATE"):
            return self._create()
        if tok.is_kw("DROP"):
            return self._drop()
        if tok.is_kw("INSERT"):
            return self._insert()
        if tok.is_kw("UPDATE"):
            return self._update()
        if tok.is_kw("DELETE"):
            return self._delete()
        if tok.is_kw("ALTER"):
            return self._alter()
        if tok.is_kw("SELECT", "VALUES"):
            return self._select()
        if tok.is_kw("EXPLAIN"):
            return self._explain()
        if tok.is_kw("VACUUM", "REINDEX", "ANALYZE", "REPAIR", "CHECK",
                     "DISCARD"):
            return self._maintenance()
        if tok.is_kw("PRAGMA", "SET"):
            return self._set_option()
        if tok.is_kw("BEGIN", "COMMIT", "ROLLBACK"):
            self.advance()
            self.accept_kw("TRANSACTION")
            return st.TransactionStmt(
                "BEGIN" if tok.upper == "BEGIN" else tok.upper)
        raise ParseError(f"cannot parse statement starting with "
                         f"{tok.text!r}")

    # -- CREATE ------------------------------------------------------------
    def _create(self) -> st.Statement:
        self.expect_kw("CREATE")
        unique = self.accept_kw("UNIQUE")
        if self.accept_kw("INDEX"):
            return self._create_index(unique)
        if unique:
            raise ParseError("UNIQUE is only valid before INDEX")
        if self.accept_kw("TABLE"):
            return self._create_table()
        if self.accept_kw("VIEW"):
            return self._create_view()
        if self.accept_kw("STATISTICS"):
            return self._create_statistics()
        raise ParseError(f"cannot CREATE {self.cur.text!r}")

    def _if_not_exists(self) -> bool:
        if self.accept_kw("IF"):
            self.expect_kw("NOT")
            self.expect_kw("EXISTS")
            return True
        return False

    def _create_table(self) -> st.CreateTable:
        if_not_exists = self._if_not_exists()
        name = self.ident()
        self.expect_op("(")
        columns: list[st.ColumnDef] = []
        constraints: list[st.TableConstraint] = []
        while True:
            if self.cur.is_kw("PRIMARY", "UNIQUE", "FOREIGN", "CONSTRAINT"):
                constraints.append(self._table_constraint())
            else:
                columns.append(self._column_def())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        without_rowid = False
        engine = None
        inherits = None
        while True:
            if self.accept_kw("WITHOUT"):
                self.expect_kw("ROWID")
                without_rowid = True
            elif self.accept_kw("ENGINE"):
                self.expect_op("=")
                engine = self.ident().upper()
            elif self.accept_kw("INHERITS"):
                self.expect_op("(")
                inherits = self.ident()
                self.expect_op(")")
            else:
                break
        return st.CreateTable(name=name, columns=columns,
                              constraints=constraints,
                              without_rowid=without_rowid, engine=engine,
                              inherits=inherits,
                              if_not_exists=if_not_exists)

    def _column_def(self) -> st.ColumnDef:
        name = self.ident()
        type_words: list[str] = []
        while (self.cur.type is TokenType.IDENT
               and not self.cur.is_op(",", ")")):
            type_words.append(self.advance().text)
        # Parenthesized type sizes like VARCHAR(10).
        if type_words and self.accept_op("("):
            while not self.cur.is_op(")"):
                self.advance()
            self.expect_op(")")
        col = st.ColumnDef(name=name,
                           type_name=" ".join(type_words) or None)
        while True:
            if self.accept_kw("PRIMARY"):
                self.expect_kw("KEY")
                col.primary_key = True
            elif self.accept_kw("UNIQUE"):
                col.unique = True
            elif self.accept_kw("NOT"):
                self.expect_kw("NULL")
                col.not_null = True
            elif self.accept_kw("COLLATE"):
                col.collation = self.ident().upper()
            elif self.accept_kw("DEFAULT"):
                col.default = self.parse_expr()
            else:
                break
        return col

    def _table_constraint(self) -> st.TableConstraint:
        if self.accept_kw("CONSTRAINT"):
            self.ident()  # constraint names are accepted and ignored
        if self.accept_kw("PRIMARY"):
            self.expect_kw("KEY")
            kind = "PRIMARY KEY"
        elif self.accept_kw("UNIQUE"):
            kind = "UNIQUE"
        else:
            raise ParseError(
                f"unsupported table constraint near {self.cur.text!r}")
        self.expect_op("(")
        cols = [self.ident()]
        while self.accept_op(","):
            cols.append(self.ident())
        self.expect_op(")")
        return st.TableConstraint(kind=kind, columns=cols)

    def _create_index(self, unique: bool) -> st.CreateIndex:
        if_not_exists = self._if_not_exists()
        name = self.ident()
        self.expect_kw("ON")
        table = self.ident()
        self.expect_op("(")
        exprs = [self._indexed_expr()]
        while self.accept_op(","):
            exprs.append(self._indexed_expr())
        self.expect_op(")")
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expr()
        return st.CreateIndex(name=name, table=table, exprs=exprs,
                              unique=unique, where=where,
                              if_not_exists=if_not_exists)

    def _indexed_expr(self) -> st.IndexedExpr:
        expr = self.parse_expr()
        collation = None
        if isinstance(expr, CollateNode):
            collation = expr.collation
            expr = expr.operand
        descending = False
        if self.accept_kw("DESC"):
            descending = True
        else:
            self.accept_kw("ASC")
        return st.IndexedExpr(expr=expr, collation=collation,
                              descending=descending)

    def _create_view(self) -> st.CreateView:
        if_not_exists = self._if_not_exists()
        name = self.ident()
        self.expect_kw("AS")
        self.expect_kw("SELECT")
        select = self._select_body()
        return st.CreateView(name=name, select=select,
                             if_not_exists=if_not_exists)

    def _create_statistics(self) -> st.CreateStatistics:
        name = self.ident()
        self.expect_kw("ON")
        cols = [self.ident()]
        while self.accept_op(","):
            cols.append(self.ident())
        self.expect_kw("FROM")
        table = self.ident()
        return st.CreateStatistics(name=name, columns=cols, table=table)

    # -- DROP -----------------------------------------------------------------
    def _drop(self) -> st.Drop:
        self.expect_kw("DROP")
        kind_tok = self.expect_kw("TABLE", "INDEX", "VIEW")
        if_exists = False
        if self.accept_kw("IF"):
            self.expect_kw("EXISTS")
            if_exists = True
        return st.Drop(kind=kind_tok.upper, name=self.ident(),
                       if_exists=if_exists)

    # -- DML ------------------------------------------------------------------
    def _insert(self) -> st.Insert:
        self.expect_kw("INSERT")
        on_conflict = None
        if self.accept_kw("OR"):
            on_conflict = self.expect_kw("IGNORE", "REPLACE", "ABORT",
                                         "FAIL").upper
        self.expect_kw("INTO")
        table = self.ident()
        columns = None
        if self.accept_op("("):
            columns = [self.ident()]
            while self.accept_op(","):
                columns.append(self.ident())
            self.expect_op(")")
        self.expect_kw("VALUES")
        rows = [self._value_row()]
        while self.accept_op(","):
            rows.append(self._value_row())
        return st.Insert(table=table, columns=columns, rows=rows,
                         on_conflict=on_conflict)

    def _value_row(self) -> list[Expr]:
        self.expect_op("(")
        row = [self.parse_expr()]
        while self.accept_op(","):
            row.append(self.parse_expr())
        self.expect_op(")")
        return row

    def _update(self) -> st.Update:
        self.expect_kw("UPDATE")
        on_conflict = None
        if self.accept_kw("OR"):
            on_conflict = self.expect_kw("IGNORE", "REPLACE", "ABORT",
                                         "FAIL").upper
        table = self.ident()
        self.expect_kw("SET")
        assignments = [self._assignment()]
        while self.accept_op(","):
            assignments.append(self._assignment())
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expr()
        return st.Update(table=table, assignments=assignments, where=where,
                         on_conflict=on_conflict)

    def _assignment(self) -> tuple[str, Expr]:
        column = self.ident()
        self.expect_op("=")
        return column, self.parse_expr()

    def _delete(self) -> st.Delete:
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        table = self.ident()
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expr()
        return st.Delete(table=table, where=where)

    def _alter(self) -> st.AlterTable:
        self.expect_kw("ALTER")
        self.expect_kw("TABLE")
        table = self.ident()
        if self.accept_kw("RENAME"):
            if self.accept_kw("TO"):
                return st.AlterTable(table=table, action="RENAME TO",
                                     new_name=self.ident())
            self.accept_kw("COLUMN")
            old = self.ident()
            self.expect_kw("TO")
            return st.AlterTable(table=table, action="RENAME COLUMN",
                                 column=old, new_name=self.ident())
        if self.accept_kw("ADD"):
            self.accept_kw("COLUMN")
            return st.AlterTable(table=table, action="ADD COLUMN",
                                 column_def=self._column_def())
        raise ParseError(f"unsupported ALTER TABLE action near "
                         f"{self.cur.text!r}")

    # -- EXPLAIN ----------------------------------------------------------------
    def _explain(self) -> st.Explain:
        self.expect_kw("EXPLAIN")
        query_plan = False
        if self.accept_kw("QUERY"):
            self.expect_kw("PLAN")
            query_plan = True
        if not self.cur.is_kw("SELECT"):
            raise ParseError("EXPLAIN supports SELECT statements only, "
                             f"got {self.cur.text!r}")
        return st.Explain(select=self._select(), query_plan=query_plan)

    # -- SELECT -----------------------------------------------------------------
    def _select(self) -> st.Select:
        self.expect_kw("SELECT")
        return self._select_body()

    def _select_body(self) -> st.Select:
        distinct = False
        if self.accept_kw("DISTINCT"):
            distinct = True
        else:
            self.accept_kw("ALL")
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        select = st.Select(items=items, distinct=distinct)
        if self.accept_kw("FROM"):
            select.tables.append(self._table_name())
            while True:
                if self.accept_op(","):
                    select.tables.append(self._table_name())
                    continue
                join_kind = self._join_kind()
                if join_kind is None:
                    break
                table = self._table_name()
                on = None
                if self.accept_kw("ON"):
                    on = self.parse_expr()
                select.joins.append(st.JoinClause(kind=join_kind,
                                                  table=table, on=on))
        if self.accept_kw("WHERE"):
            select.where = self.parse_expr()
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            select.group_by.append(self.parse_expr())
            while self.accept_op(","):
                select.group_by.append(self.parse_expr())
            if self.accept_kw("HAVING"):
                select.having = self.parse_expr()
        for compound_kw in ("INTERSECT", "UNION", "EXCEPT"):
            if self.accept_kw(compound_kw):
                kind = compound_kw
                if kind == "UNION" and self.accept_kw("ALL"):
                    kind = "UNION ALL"
                self.expect_kw("SELECT")
                select.compound = (kind, self._select_body())
                return select
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            select.order_by.append(self._order_item())
            while self.accept_op(","):
                select.order_by.append(self._order_item())
        if self.accept_kw("LIMIT"):
            select.limit = self.parse_expr()
            if self.accept_kw("OFFSET"):
                select.offset = self.parse_expr()
        return select

    def _table_name(self) -> str:
        """A possibly schema-qualified table name (information_schema.x)."""
        name = self.ident()
        while self.cur.is_op(".") and \
                self.tokens[self.pos + 1].type is not TokenType.EOF and \
                not self.tokens[self.pos + 1].is_op("*"):
            self.advance()
            name += "." + self.ident()
        return name

    def _join_kind(self) -> Optional[str]:
        if self.accept_kw("JOIN"):
            return "INNER"
        if self.cur.is_kw("INNER", "LEFT", "CROSS"):
            kind = self.advance().upper
            self.accept_kw("OUTER")
            self.expect_kw("JOIN")
            return kind
        return None

    def _select_item(self) -> st.SelectItem:
        if self.accept_op("*"):
            return st.SelectItem(expr=None)
        # Table-qualified star: t0.*
        if (self.cur.type is TokenType.IDENT
                and self.tokens[self.pos + 1].is_op(".")
                and self.tokens[self.pos + 2].is_op("*")):
            table = self.ident()
            self.advance()
            self.advance()
            return st.SelectItem(expr=None, star_table=table)
        expr = self.parse_expr()
        alias = None
        if self.accept_kw("AS"):
            alias = self.ident()
        elif self.cur.type is TokenType.IDENT:
            alias = self.ident()
        return st.SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> st.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_kw("DESC"):
            descending = True
        else:
            self.accept_kw("ASC")
        return st.OrderItem(expr=expr, descending=descending)

    # -- maintenance & options ---------------------------------------------------
    def _maintenance(self) -> st.Maintenance:
        tok = self.advance()
        command = tok.upper
        if command == "VACUUM":
            full = self.accept_kw("FULL")
            target = None
            if self.cur.type is TokenType.IDENT:
                target = self.ident()
            return st.Maintenance(command="VACUUM", target=target, full=full)
        if command == "REINDEX":
            target = None
            if self.cur.type is TokenType.IDENT:
                target = self.ident()
            return st.Maintenance(command="REINDEX", target=target)
        if command == "ANALYZE":
            target = None
            if self.cur.type is TokenType.IDENT:
                target = self.ident()
            return st.Maintenance(command="ANALYZE", target=target)
        if command in ("REPAIR", "CHECK"):
            self.expect_kw("TABLE")
            target = self.ident()
            for_upgrade = False
            if self.accept_kw("FOR"):
                self.expect_kw("UPGRADE")
                for_upgrade = True
            return st.Maintenance(command=f"{command} TABLE", target=target,
                                  for_upgrade=for_upgrade)
        if command == "DISCARD":
            target = self.ident() if self.cur.type in (
                TokenType.IDENT, TokenType.KEYWORD) else None
            return st.Maintenance(command="DISCARD", target=target)
        raise ParseError(f"unsupported maintenance command {command}")

    def _set_option(self) -> st.SetOption:
        tok = self.advance()
        scope = None
        if tok.upper == "SET" and self.cur.is_kw("GLOBAL", "SESSION",
                                                 "LOCAL"):
            scope = self.advance().upper
        name = self.ident()
        value = None
        if self.accept_op("="):
            value = self.parse_expr()
        return st.SetOption(name=name, value=value, scope=scope)

    # -- expressions ------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        tokens = self.tokens
        while True:
            tok = tokens[self.pos]
            if tok.type is not TokenType.KEYWORD or tok.upper != "OR":
                return left
            self.pos += 1
            left = BinaryNode(BinaryOp.OR, left, self._and_expr())

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        tokens = self.tokens
        while True:
            tok = tokens[self.pos]
            if tok.type is not TokenType.KEYWORD or tok.upper != "AND":
                return left
            self.pos += 1
            left = BinaryNode(BinaryOp.AND, left, self._not_expr())

    def _not_expr(self) -> Expr:
        tok = self.tokens[self.pos]
        if tok.type is TokenType.KEYWORD and tok.upper == "NOT" \
                and not self.tokens[self.pos + 1].is_kw(
                    "NULL", "BETWEEN", "IN", "LIKE", "GLOB"):
            self.pos += 1
            return UnaryNode(UnaryOp.NOT, self._not_expr())
        return self._binary(10)

    def _comparison(self) -> Expr:
        return self._binary(10)

    def _binary(self, min_prec: int) -> Expr:
        """Precedence-climbing loop over the binary-operator levels.

        Replaces the old one-method-per-level descent (comparison,
        inequality, bitwise, additive, multiplicative, concat) with a
        single table-driven loop; associativity and the per-level right
        operand (next-tighter level) are identical.  Keyword predicates
        (IS, BETWEEN, IN, LIKE, ...) live at comparison precedence.
        """
        left = self._unary()
        tokens = self.tokens
        while True:
            tok = tokens[self.pos]
            if tok.type is TokenType.OP:
                entry = _OP_PREC.get(tok.text)
                if entry is None or entry[0] < min_prec:
                    return left
                self.pos += 1
                left = BinaryNode(entry[1], left,
                                  self._binary(entry[0] + 10))
                continue
            if min_prec > 10 or tok.type is not TokenType.KEYWORD:
                return left
            up = tok.upper
            if up == "IS":
                self.pos += 1
                left = self._is_tail(left)
            elif up == "ISNULL":
                self.pos += 1
                left = PostfixNode(PostfixOp.ISNULL, left)
            elif up == "NOTNULL":
                self.pos += 1
                left = PostfixNode(PostfixOp.NOTNULL, left)
            elif up == "NOT":
                self.pos += 1
                left = self._negated_predicate(left)
            elif up == "BETWEEN":
                self.pos += 1
                left = self._between_tail(left, negated=False)
            elif up == "IN":
                self.pos += 1
                left = self._in_tail(left, negated=False)
            elif up == "LIKE":
                self.pos += 1
                left = BinaryNode(BinaryOp.LIKE, left, self._binary(20))
            elif up == "GLOB":
                self.pos += 1
                left = BinaryNode(BinaryOp.GLOB, left, self._binary(20))
            else:
                return left

    def _is_tail(self, left: Expr) -> Expr:
        if self.accept_kw("NOT"):
            if self.accept_kw("NULL"):
                return PostfixNode(PostfixOp.NOTNULL, left)
            if self.accept_kw("TRUE"):
                return PostfixNode(PostfixOp.IS_NOT_TRUE, left)
            if self.accept_kw("FALSE"):
                return PostfixNode(PostfixOp.IS_NOT_FALSE, left)
            return BinaryNode(BinaryOp.IS_NOT, left, self._inequality())
        if self.accept_kw("NULL"):
            return PostfixNode(PostfixOp.ISNULL, left)
        if self.accept_kw("TRUE"):
            return PostfixNode(PostfixOp.IS_TRUE, left)
        if self.accept_kw("FALSE"):
            return PostfixNode(PostfixOp.IS_FALSE, left)
        return BinaryNode(BinaryOp.IS, left, self._inequality())

    def _negated_predicate(self, left: Expr) -> Expr:
        if self.accept_kw("BETWEEN"):
            return self._between_tail(left, negated=True)
        if self.accept_kw("IN"):
            return self._in_tail(left, negated=True)
        if self.accept_kw("LIKE"):
            return BinaryNode(BinaryOp.NOT_LIKE, left, self._inequality())
        if self.accept_kw("GLOB"):
            return UnaryNode(UnaryOp.NOT,
                             BinaryNode(BinaryOp.GLOB, left,
                                        self._inequality()))
        if self.accept_kw("NULL"):
            return PostfixNode(PostfixOp.NOTNULL, left)
        raise ParseError(f"unexpected NOT near {self.cur.text!r}")

    def _between_tail(self, left: Expr, negated: bool) -> Expr:
        low = self._inequality()
        self.expect_kw("AND")
        high = self._inequality()
        return BetweenNode(left, low, high, negated)

    def _in_tail(self, left: Expr, negated: bool) -> Expr:
        self.expect_op("(")
        items = [self.parse_expr()]
        while self.accept_op(","):
            items.append(self.parse_expr())
        self.expect_op(")")
        return InListNode(left, tuple(items), negated)

    def _inequality(self) -> Expr:
        return self._binary(20)

    def _unary(self) -> Expr:
        tokens = self.tokens
        tok = tokens[self.pos]
        if tok.type is TokenType.OP:
            text = tok.text
            if text == "-":
                self.pos += 1
                # Fold negation of numeric literals exactly, as SQLite's
                # parser does — this is what makes -9223372036854775808
                # an INTEGER even though +9223372036854775808 overflows
                # into REAL.  The token-level case must run *before*
                # _primary converts an out-of-range positive literal to
                # REAL.
                tok = tokens[self.pos]
                if tok.type is TokenType.INTEGER:
                    self.pos += 1
                    value = -int(tok.text)
                    literal: Expr = LiteralNode(
                        Value.integer(value) if fits_int64(value)
                        else Value.real(float(value)))
                    return self._collate_tail(literal)
                if tok.type is TokenType.FLOAT:
                    self.pos += 1
                    return self._collate_tail(
                        LiteralNode(Value.real(-float(tok.text))))
                # Nested minus: fold transitively over the already-folded
                # operand so "- -86" normalizes to the literal 86.
                operand = self._unary()
                folded = _fold_minus_literal(operand)
                if folded is not None:
                    return folded
                return UnaryNode(UnaryOp.MINUS, operand)
            if text == "+":
                self.pos += 1
                return UnaryNode(UnaryOp.PLUS, self._unary())
            if text == "~":
                self.pos += 1
                return UnaryNode(UnaryOp.BITNOT, self._unary())
        elif tok.type is TokenType.KEYWORD and tok.upper == "NOT":
            # NOT is also accepted at unary level inside parenthesized
            # contexts such as (NOT x) emitted by the renderer.
            self.pos += 1
            return UnaryNode(UnaryOp.NOT, self._not_expr())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.KEYWORD or tok.upper != "COLLATE":
            return expr
        return self._collate_tail(expr)

    def _collate_tail(self, expr: Expr) -> Expr:
        while self.accept_kw("COLLATE"):
            expr = CollateNode(expr, self.ident().upper())
        return expr

    def _primary(self) -> Expr:
        tok = self.tokens[self.pos]
        ttype = tok.type
        if ttype is TokenType.IDENT:
            return self._identifier_expr()
        if ttype is TokenType.INTEGER:
            self.pos += 1
            raw = int(tok.text)
            if fits_int64(raw):
                return LiteralNode(Value.integer(raw))
            # Integer literals beyond int64 parse as REAL (SQLite rule).
            return LiteralNode(Value.real(float(raw)))
        if ttype is TokenType.FLOAT:
            self.pos += 1
            return LiteralNode(Value.real(float(tok.text)))
        if ttype is TokenType.STRING:
            self.pos += 1
            return LiteralNode(Value.text(tok.text))
        if ttype is TokenType.BLOB:
            self.pos += 1
            return LiteralNode(Value.blob(bytes.fromhex(tok.text)))
        if tok.is_kw("NULL"):
            self.advance()
            return LiteralNode(NULL)
        if tok.is_kw("TRUE"):
            self.advance()
            return LiteralNode(Value.boolean(True))
        if tok.is_kw("FALSE"):
            self.advance()
            return LiteralNode(Value.boolean(False))
        if tok.is_kw("CAST"):
            self.advance()
            self.expect_op("(")
            operand = self.parse_expr()
            self.expect_kw("AS")
            words = [self.ident()]
            while self.cur.type in (TokenType.IDENT, TokenType.KEYWORD) \
                    and not self.cur.is_op(")"):
                words.append(self.advance().text)
            self.expect_op(")")
            return CastNode(operand, " ".join(words))
        if tok.is_kw("CASE"):
            return self._case()
        if tok.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r} in expression "
                         f"near offset {tok.pos}")

    def _case(self) -> Expr:
        self.expect_kw("CASE")
        operand = None
        if not self.cur.is_kw("WHEN"):
            operand = self.parse_expr()
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_kw("WHEN"):
            cond = self.parse_expr()
            self.expect_kw("THEN")
            whens.append((cond, self.parse_expr()))
        if not whens:
            raise ParseError("CASE requires at least one WHEN branch")
        else_ = None
        if self.accept_kw("ELSE"):
            else_ = self.parse_expr()
        self.expect_kw("END")
        return CaseNode(operand, tuple(whens), else_)

    def _identifier_expr(self) -> Expr:
        name = self.tokens[self.pos].text
        self.pos += 1
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.OP:
            return ColumnNode(table="", column=name)
        if tok.text == ".":
            self.pos += 1
            column = self.ident()
            return ColumnNode(table=name, column=column)
        if self.accept_op("("):
            # Function call; COUNT(*) is a zero-argument FunctionNode.
            args: list[Expr] = []
            if self.accept_op("*"):
                self.expect_op(")")
                return FunctionNode(name.upper(), ())
            if not self.cur.is_op(")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
            return FunctionNode(name.upper(), tuple(args))
        if self.accept_op("."):
            column = self.ident()
            return ColumnNode(table=name, column=column)
        return ColumnNode(table="", column=name)


def _fold_minus_literal(operand: Expr) -> Expr | None:
    from repro.values import SQLType, fits_int64

    if not isinstance(operand, LiteralNode):
        return None
    value = operand.value
    if value.t is SQLType.INTEGER:
        negated = -int(value.v)
        if fits_int64(negated):
            return LiteralNode(Value.integer(negated))
        return LiteralNode(Value.real(float(negated)))
    if value.t is SQLType.REAL:
        return LiteralNode(Value.real(-float(value.v)))
    return None


#: Parsed-statement memo.  Statement objects are never mutated after
#: parsing (binding copies, ALTER rewrites catalog objects, CREATE
#: VIEW/INDEX store or replace whole expression lists), so one parse per
#: distinct SQL text can be shared across engines and replays.  Failures
#: are not cached; they re-raise identically on re-parse.
_PARSE_CACHE: dict[str, "st.Statement"] = {}
_PARSE_CACHE_LIMIT = 1024


def parse_statement(sql: str) -> st.Statement:
    """Parse exactly one statement; trailing semicolon is allowed."""
    stmt = _PARSE_CACHE.get(sql)
    if stmt is not None:
        return stmt
    parser = Parser(sql)
    stmt = parser.parse_statement()
    if not parser.at_end():
        raise ParseError(f"unexpected trailing input near "
                         f"{parser.cur.text!r}")
    if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[sql] = stmt
    return stmt


def parse_expression(sql: str) -> Expr:
    """Parse a standalone expression (used by tests and the reducer)."""
    parser = Parser(sql)
    expr = parser.parse_expr()
    if not parser.at_end():
        raise ParseError(f"unexpected trailing input near "
                         f"{parser.cur.text!r}")
    return expr
