"""Engine-side semantics: the dialect semantics plus injected defects.

The oracle's interpreter always uses the pristine :mod:`repro.interp`
semantics.  MiniDB's executor evaluates expressions through the classes
below, which are byte-for-byte identical *unless* a defect is enabled —
mirroring how the paper's real bugs lived in the DBMS evaluation paths
while the SQLancer-side interpreter stayed exact.
"""

from __future__ import annotations

from repro.interp.base import Semantics, Ternary, comparison_collation
from repro.interp.mysql_sem import MySQLSemantics, to_double
from repro.interp.postgres_sem import PostgresSemantics
from repro.interp.sqlite_sem import SQLiteSemantics
from repro.minidb.bugs import BugRegistry
from repro.sqlast.nodes import BinaryOp, CastNode, Expr, LiteralNode
from repro.values import NULL, SQLType, Value

_NULL_LITERAL = LiteralNode(NULL)


class EngineSQLiteSemantics(SQLiteSemantics):
    """SQLite semantics with injection points for evaluator-level defects."""

    def __init__(self, bugs: BugRegistry):
        self.bugs = bugs

    def compare(self, op: BinaryOp, left: Expr, lv: Value,
                right: Expr, rv: Value) -> Ternary:
        if self.bugs.on("sqlite-rtrim-compare"):
            # Defect: RTRIM collation also strips *leading* spaces.
            if comparison_collation(left, right) == "RTRIM":
                lv = _lstrip_text(lv)
                rv = _lstrip_text(rv)
        return super().compare(op, left, lv, right, rv)

    def compile_compare(self, op: BinaryOp, left: Expr,
                        right: Expr | None):
        # The only comparison defect this class can inject applies solely
        # to RTRIM-collated sites, and the collating sequence is a static
        # property of the operand expressions.  Non-RTRIM sites therefore
        # compile to the pristine fast path; RTRIM sites stay on the
        # generic per-call path, which consults the bug registry on every
        # evaluation (defects may be toggled after compilation).
        right_expr: Expr = _NULL_LITERAL if right is None else right
        if comparison_collation(left, right_expr) == "RTRIM":
            return Semantics.compile_compare(self, op, left, right)
        return self._compile_compare_sqlite(op, left, right)


class EngineMySQLSemantics(MySQLSemantics):
    """MySQL semantics with injection points for evaluator-level defects."""

    def __init__(self, bugs: BugRegistry):
        self.bugs = bugs

    def to_bool(self, v: Value) -> Ternary:
        if v.t is SQLType.INTEGER:
            # Dominant case (comparison results are 0/1 integers); the
            # only to_bool defect concerns TEXT, so this is exact.
            return v.v != 0
        if v.t is SQLType.TEXT and self.bugs.on("mysql-text-double-bool"):
            # Defect: TEXT is truncated to an integer before the zero
            # test, so '0.5' is FALSE (paper §4.5, fixed in 8.0.17).
            num = to_double(v)
            assert num is not None
            if num != num or num in (float("inf"), float("-inf")):
                return super().to_bool(v)
            return int(num) != 0
        return super().to_bool(v)

    def compare(self, op: BinaryOp, left: Expr, lv: Value,
                right: Expr, rv: Value) -> Ternary:
        if self.bugs.on("mysql-unsigned-cast-compare"):
            if _is_unsigned_cast(left):
                lv = _reinterpret_signed(lv)
            if _is_unsigned_cast(right):
                rv = _reinterpret_signed(rv)
        return super().compare(op, left, lv, right, rv)

    def compile_compare(self, op: BinaryOp, left: Expr,
                        right: Expr | None):
        # The unsigned-cast defect can only fire when an operand *is* an
        # unsigned cast — a static property of the expressions.  Such
        # sites stay on the generic per-call path (which consults the bug
        # registry each evaluation); every other site compiles to the
        # pristine fast path, valid whether or not the defect is on.
        if _is_unsigned_cast(left) or (right is not None
                                       and _is_unsigned_cast(right)):
            return Semantics.compile_compare(self, op, left, right)
        return self._compile_compare_mysql(op)


class EnginePostgresSemantics(PostgresSemantics):
    """PostgreSQL semantics (its injected defects live outside the
    evaluator: executor GROUP BY, planner, storage and maintenance)."""

    def __init__(self, bugs: BugRegistry):
        self.bugs = bugs


def build_engine_semantics(dialect: str, bugs: BugRegistry) -> Semantics:
    if dialect == "sqlite":
        return EngineSQLiteSemantics(bugs)
    if dialect == "mysql":
        return EngineMySQLSemantics(bugs)
    if dialect == "postgres":
        return EnginePostgresSemantics(bugs)
    raise ValueError(f"unknown dialect: {dialect!r}")


def _lstrip_text(v: Value) -> Value:
    if v.t is SQLType.TEXT:
        return Value.text(str(v.v).lstrip(" "))
    return v


def _is_unsigned_cast(expr: Expr) -> bool:
    return isinstance(expr, CastNode) and "UNSIGNED" in expr.type_name.upper()


def _reinterpret_signed(v: Value) -> Value:
    """Defect helper: view an unsigned 64-bit value through signed eyes."""
    if v.t is SQLType.INTEGER and int(v.v) >= 2**63:
        return Value.integer(int(v.v) - 2**64)
    return v
