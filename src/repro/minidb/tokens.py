"""SQL tokenizer for MiniDB.

Hand-written single-pass scanner.  Produces a flat list of
:class:`Token` objects; the parser works over that list with one token of
lookahead.  Number/string/blob literal syntax follows SQLite, which is a
superset of what the MySQL- and PostgreSQL-style dialects need here
(dialect-specific lexical differences, e.g. MySQL backslash escapes, are
confined to how the *generator* renders literals).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BLOB = "blob"
    OP = "op"
    EOF = "eof"


#: Reserved words recognized as keywords (upper-cased).  Anything else
#: alphabetic is an identifier.
KEYWORDS = frozenset("""
    ABORT ADD ALL ALTER ANALYZE AND AS ASC BEGIN BETWEEN BY CASE CAST CHECK
    COLLATE COLUMN COMMIT CONSTRAINT CREATE CROSS DEFAULT DELETE DESC
    DISCARD DISTINCT DROP ELSE END ENGINE ESCAPE EXCEPT EXISTS EXPLAIN
    FAIL FALSE
    FOR FOREIGN FROM FULL GLOB GROUP HAVING IF IGNORE IN INDEX INHERITS
    INNER INSERT INTERSECT INTO IS ISNULL JOIN KEY LEFT LIKE LIMIT NOT
    NOTNULL NULL OFFSET ON OR ORDER OUTER PLAN PRAGMA PRIMARY QUERY
    REFERENCES REINDEX
    RENAME REPAIR REPLACE ROLLBACK ROWID SELECT SET STATISTICS TABLE THEN
    TO TRANSACTION TRUE UNION UNIQUE UPDATE UPGRADE USING VACUUM VALUES
    VIEW WHEN WHERE WITHOUT GLOBAL SESSION LOCAL
""".split())

#: Multi-character operators, longest first so the scanner is greedy.
MULTI_OPS = ["<=>", "||", "<<", ">>", "<=", ">=", "==", "!=", "<>"]
SINGLE_OPS = "+-*/%&|~<>=(),.;"

# ASCII-only digit tests: the SQL lexical grammar has no Unicode digits.


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    text: str
    pos: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def is_kw(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.upper in names

    def is_op(self, *ops: str) -> bool:
        return self.type is TokenType.OP and self.text in ops


def tokenize(sql: str) -> list[Token]:
    """Scan *sql* into tokens; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        c = sql[i]
        if c in " \t\r\n\f\v":
            i += 1
            continue
        if c == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if c == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise ParseError("unterminated block comment")
            i = end + 2
            continue
        if c == "'":
            text, i = _scan_string(sql, i)
            tokens.append(Token(TokenType.STRING, text, i))
            continue
        if c in ('"', "`", "["):
            text, i = _scan_quoted_ident(sql, i)
            tokens.append(Token(TokenType.IDENT, text, i))
            continue
        if c in "xX" and i + 1 < n and sql[i + 1] == "'":
            text, i = _scan_blob(sql, i)
            tokens.append(Token(TokenType.BLOB, text, i))
            continue
        if "0" <= c <= "9" or (c == "." and i + 1 < n
                               and "0" <= sql[i + 1] <= "9"):
            tok, i = _scan_number(sql, i)
            tokens.append(tok)
            continue
        if c.isalpha() or c == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        matched = False
        for op in MULTI_OPS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if c in SINGLE_OPS:
            tokens.append(Token(TokenType.OP, c, i))
            i += 1
            continue
        raise ParseError(f"unrecognized token {c!r} at offset {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _scan_string(sql: str, i: int) -> tuple[str, int]:
    """Scan a single-quoted string with '' escaping; returns (value, next)."""
    out = []
    i += 1
    n = len(sql)
    while i < n:
        c = sql[i]
        if c == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(c)
        i += 1
    raise ParseError("unterminated string literal")


def _scan_quoted_ident(sql: str, i: int) -> tuple[str, int]:
    open_ch = sql[i]
    close_ch = {"[": "]"}.get(open_ch, open_ch)
    out = []
    i += 1
    n = len(sql)
    while i < n:
        c = sql[i]
        if c == close_ch:
            if close_ch != "]" and i + 1 < n and sql[i + 1] == close_ch:
                out.append(close_ch)
                i += 2
                continue
            return "".join(out), i + 1
        out.append(c)
        i += 1
    raise ParseError("unterminated quoted identifier")


def _scan_blob(sql: str, i: int) -> tuple[str, int]:
    """Scan ``X'ABCD'``; the token text is the hex payload."""
    i += 2  # skip x'
    start = i
    n = len(sql)
    while i < n and sql[i] != "'":
        i += 1
    if i >= n:
        raise ParseError("unterminated blob literal")
    payload = sql[start:i]
    if len(payload) % 2 != 0 or any(c not in "0123456789abcdefABCDEF"
                                    for c in payload):
        raise ParseError(f"malformed blob literal: X'{payload}'")
    return payload, i + 1


def _scan_number(sql: str, i: int) -> tuple[Token, int]:
    start = i
    n = len(sql)
    is_float = False
    while i < n and "0" <= sql[i] <= "9":
        i += 1
    if i < n and sql[i] == ".":
        is_float = True
        i += 1
        while i < n and "0" <= sql[i] <= "9":
            i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and "0" <= sql[j] <= "9":
            is_float = True
            i = j
            while i < n and "0" <= sql[i] <= "9":
                i += 1
    text = sql[start:i]
    ttype = TokenType.FLOAT if is_float else TokenType.INTEGER
    return Token(ttype, text, start), i
