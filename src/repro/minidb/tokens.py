"""SQL tokenizer for MiniDB.

Hand-written single-pass scanner.  Produces a flat list of
:class:`Token` objects; the parser works over that list with one token of
lookahead.  Number/string/blob literal syntax follows SQLite, which is a
superset of what the MySQL- and PostgreSQL-style dialects need here
(dialect-specific lexical differences, e.g. MySQL backslash escapes, are
confined to how the *generator* renders literals).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BLOB = "blob"
    OP = "op"
    EOF = "eof"


#: Reserved words recognized as keywords (upper-cased).  Anything else
#: alphabetic is an identifier.
KEYWORDS = frozenset("""
    ABORT ADD ALL ALTER ANALYZE AND AS ASC BEGIN BETWEEN BY CASE CAST CHECK
    COLLATE COLUMN COMMIT CONSTRAINT CREATE CROSS DEFAULT DELETE DESC
    DISCARD DISTINCT DROP ELSE END ENGINE ESCAPE EXCEPT EXISTS EXPLAIN
    FAIL FALSE
    FOR FOREIGN FROM FULL GLOB GROUP HAVING IF IGNORE IN INDEX INHERITS
    INNER INSERT INTERSECT INTO IS ISNULL JOIN KEY LEFT LIKE LIMIT NOT
    NOTNULL NULL OFFSET ON OR ORDER OUTER PLAN PRAGMA PRIMARY QUERY
    REFERENCES REINDEX
    RENAME REPAIR REPLACE ROLLBACK ROWID SELECT SET STATISTICS TABLE THEN
    TO TRANSACTION TRUE UNION UNIQUE UPDATE UPGRADE USING VACUUM VALUES
    VIEW WHEN WHERE WITHOUT GLOBAL SESSION LOCAL
""".split())

#: Multi-character operators, longest first so the scanner is greedy.
MULTI_OPS = ["<=>", "||", "<<", ">>", "<=", ">=", "==", "!=", "<>"]
SINGLE_OPS = "+-*/%&|~<>=(),.;"

# ASCII-only digit tests: the SQL lexical grammar has no Unicode digits.


# Not frozen: the frozen-dataclass ``__init__`` pays four
# ``object.__setattr__`` calls per token, and tokenization is the single
# hottest allocation site in the engine.  Tokens are still treated as
# immutable by convention (nothing mutates or hashes them).
@dataclass(slots=True)
class Token:
    type: TokenType
    text: str
    pos: int
    #: ``text.upper()``, precomputed at scan time — the parser consults it
    #: on nearly every token, and keyword recognition needs it anyway.
    upper: str = ""

    def is_kw(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.upper in names

    def is_op(self, *ops: str) -> bool:
        return self.type is TokenType.OP and self.text in ops


def _op_alternation() -> str:
    multi = "|".join(re.escape(op) for op in MULTI_OPS)
    single = re.escape(SINGLE_OPS)
    return f"{multi}|[{single}]"


#: Master scanner: one C-level match per token.  Alternative order mirrors
#: the hand scanner's dispatch priority; the ``*bad`` groups catch the
#: unterminated/stray prefixes the good groups reject, so error behavior
#: is identical.  Anything the regex cannot match at all (e.g. non-ASCII
#: identifiers) falls back to :func:`_tokenize_fallback`.
_SCAN = re.compile(
    r"""
      (?P<ws>[ \t\r\n\f\v]+)
    | (?P<lc>--[^\n]*(?:\n|$))
    | (?P<bc>/\*(?:[^*]|\*(?!/))*\*/)
    | (?P<bcbad>/\*)
    | (?P<str>'[^']*(?:''[^']*)*')
    | (?P<qid>"[^"]*(?:""[^"]*)*"|`[^`]*(?:``[^`]*)*`|\[[^\]]*\])
    | (?P<blob>[xX]'[^']*')
    | (?P<blobbad>[xX]')
    | (?P<num>[0-9]+\.[0-9]*(?:[eE][+-]?[0-9]+)?
             |\.[0-9]+(?:[eE][+-]?[0-9]+)?
             |[0-9]+(?:[eE][+-]?[0-9]+)?)
    | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<op>OPS)
    | (?P<strbad>')
    | (?P<qidbad>["`\[])
    """.replace("OPS", _op_alternation()),
    re.VERBOSE,
)

_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")

#: word text -> (token type, uppercased text).  Identifier and keyword
#: spellings repeat endlessly across statements; this skips the
#: ``str.upper`` call and keyword-set probe for every repeat.
_WORD_CACHE: dict[str, tuple[TokenType, str]] = {}
_WORD_CACHE_LIMIT = 4096


def tokenize(sql: str) -> list[Token]:
    """Scan *sql* into tokens; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    append = tokens.append
    match = _SCAN.match
    i = 0
    n = len(sql)
    while i < n:
        m = match(sql, i)
        if m is None:
            i = _tokenize_fallback(sql, i, tokens)
            continue
        kind = m.lastgroup
        end = m.end()
        if kind == "ws":
            # Most frequent match by far (whitespace separates nearly
            # every pair of tokens) — dispatch it before anything else.
            i = end
            continue
        if kind == "word":
            # The ASCII word class may stop short of a Unicode
            # continuation character (the hand scanner used isalnum);
            # extend by hand in that rare case.
            while end < n and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            text = sql[i:end]
            entry = _WORD_CACHE.get(text)
            if entry is None:
                up = text.upper()
                entry = ((TokenType.KEYWORD if up in KEYWORDS
                          else TokenType.IDENT), up)
                if len(_WORD_CACHE) >= _WORD_CACHE_LIMIT:
                    _WORD_CACHE.clear()
                _WORD_CACHE[text] = entry
            append(Token(entry[0], text, i, entry[1]))
        elif kind == "op":
            text = m.group()
            append(Token(TokenType.OP, text, i, text))
        elif kind == "num":
            # upper is never consulted for literal tokens (is_kw checks
            # the type first), so skip the .upper() calls for them.
            text = m.group()
            ttype = (TokenType.INTEGER if text.isdigit()
                     else TokenType.FLOAT)
            append(Token(ttype, text, i, text))
        elif kind == "lc" or kind == "bc":
            pass
        elif kind == "str":
            # Historical quirk preserved: quoted tokens carry the *end*
            # offset (the hand scanner recorded the post-scan index).
            text = m.group()[1:-1].replace("''", "'")
            append(Token(TokenType.STRING, text, end, text))
        elif kind == "qid":
            raw = m.group()
            open_ch = raw[0]
            text = raw[1:-1]
            if open_ch != "[":
                text = text.replace(open_ch * 2, open_ch)
            append(Token(TokenType.IDENT, text, end, text))
        elif kind == "blob":
            payload = m.group()[2:-1]
            if len(payload) % 2 != 0 or \
                    not _HEX_DIGITS.issuperset(payload):
                raise ParseError(f"malformed blob literal: X'{payload}'")
            append(Token(TokenType.BLOB, payload, end, payload))
        elif kind == "bcbad":
            raise ParseError("unterminated block comment")
        elif kind == "strbad" or kind == "blobbad":
            which = "string" if kind == "strbad" else "blob"
            raise ParseError(f"unterminated {which} literal")
        else:  # qidbad
            raise ParseError("unterminated quoted identifier")
        i = end
    append(Token(TokenType.EOF, "", n))
    return tokens


def _tokenize_fallback(sql: str, i: int, tokens: list[Token]) -> int:
    """Handle what the master regex cannot: identifiers outside ASCII
    (``str.isalpha`` is Unicode-aware) and the unrecognized-token error."""
    c = sql[i]
    n = len(sql)
    if c.isalpha() or c == "_":
        start = i
        while i < n and (sql[i].isalnum() or sql[i] == "_"):
            i += 1
        word = sql[start:i]
        up = word.upper()
        ttype = TokenType.KEYWORD if up in KEYWORDS else TokenType.IDENT
        tokens.append(Token(ttype, word, start, up))
        return i
    raise ParseError(f"unrecognized token {c!r} at offset {i}")
