"""Parsed statement representations.

The parser turns SQL text into these dataclasses; the engine dispatches on
their type.  Expressions inside statements are shared :mod:`repro.sqlast`
nodes — the same node classes the PQS generator builds — so the engine-side
evaluator and the oracle interpreter consume identical trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sqlast.nodes import Expr


@dataclass(slots=True)
class ColumnDef:
    name: str
    type_name: Optional[str]          # None only in the sqlite dialect
    primary_key: bool = False
    unique: bool = False
    not_null: bool = False
    collation: Optional[str] = None
    default: Optional[Expr] = None


@dataclass(slots=True)
class TableConstraint:
    kind: str                          # 'PRIMARY KEY' | 'UNIQUE'
    columns: list[str] = field(default_factory=list)


@dataclass(slots=True)
class CreateTable:
    name: str
    columns: list[ColumnDef]
    constraints: list[TableConstraint] = field(default_factory=list)
    without_rowid: bool = False        # sqlite
    engine: Optional[str] = None       # mysql: INNODB | MEMORY | CSV
    inherits: Optional[str] = None     # postgres
    if_not_exists: bool = False


@dataclass(slots=True)
class IndexedExpr:
    expr: Expr
    collation: Optional[str] = None
    descending: bool = False


@dataclass(slots=True)
class CreateIndex:
    name: str
    table: str
    exprs: list[IndexedExpr]
    unique: bool = False
    where: Optional[Expr] = None       # partial index predicate
    if_not_exists: bool = False


@dataclass(slots=True)
class CreateView:
    name: str
    select: "Select"
    if_not_exists: bool = False


@dataclass(slots=True)
class CreateStatistics:                # postgres
    name: str
    columns: list[str]
    table: str


@dataclass(slots=True)
class Drop:
    kind: str                          # 'TABLE' | 'INDEX' | 'VIEW'
    name: str
    if_exists: bool = False


@dataclass(slots=True)
class Insert:
    table: str
    columns: Optional[list[str]]       # None means "all, in schema order"
    rows: list[list[Expr]]
    on_conflict: Optional[str] = None  # 'IGNORE' | 'REPLACE'


@dataclass(slots=True)
class Update:
    table: str
    assignments: list[tuple[str, Expr]]
    where: Optional[Expr] = None
    on_conflict: Optional[str] = None  # 'REPLACE' (sqlite UPDATE OR REPLACE)


@dataclass(slots=True)
class Delete:
    table: str
    where: Optional[Expr] = None


@dataclass(slots=True)
class AlterTable:
    table: str
    action: str                        # 'RENAME TO'|'RENAME COLUMN'|'ADD COLUMN'
    new_name: Optional[str] = None
    column: Optional[str] = None
    column_def: Optional[ColumnDef] = None


@dataclass(slots=True)
class JoinClause:
    kind: str                          # 'INNER' | 'LEFT' | 'CROSS'
    table: str
    on: Optional[Expr] = None


@dataclass(slots=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(slots=True)
class SelectItem:
    expr: Optional[Expr]               # None means a star
    star_table: Optional[str] = None   # table-qualified star (t.*)
    alias: Optional[str] = None


@dataclass(slots=True)
class Select:
    items: list[SelectItem]
    tables: list[str] = field(default_factory=list)
    joins: list[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False
    compound: Optional[tuple[str, "Select"]] = None  # ('INTERSECT'|..., rhs)


@dataclass(slots=True)
class Explain:
    """``EXPLAIN [QUERY PLAN] SELECT ...`` — plan introspection.

    MiniDB keeps the SQLite spelling; both forms return the access-path
    rows (there is no separate bytecode listing to show).
    """

    select: Select
    query_plan: bool = False           # the EXPLAIN QUERY PLAN spelling


@dataclass(slots=True)
class Maintenance:
    """VACUUM / REINDEX / ANALYZE / CHECK TABLE / REPAIR TABLE / DISCARD."""

    command: str                       # upper-case command word
    target: Optional[str] = None       # table/index name if given
    full: bool = False                 # VACUUM FULL (postgres)
    for_upgrade: bool = False          # CHECK TABLE .. FOR UPGRADE (mysql)


@dataclass(slots=True)
class SetOption:
    """PRAGMA name [= value] (sqlite) or SET [GLOBAL] name = value."""

    name: str
    value: Optional[Expr] = None
    scope: Optional[str] = None        # 'GLOBAL' | 'SESSION' | None


@dataclass(slots=True)
class TransactionStmt:
    action: str                        # 'BEGIN' | 'COMMIT' | 'ROLLBACK'


Statement = (
    CreateTable | CreateIndex | CreateView | CreateStatistics | Drop
    | Insert | Update | Delete | AlterTable | Select | Explain
    | Maintenance | SetOption | TransactionStmt
)
