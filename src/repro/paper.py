"""Machine-readable index of the paper's artifacts and where this
repository reproduces each one.

``python -m repro.paper`` prints the index; the test suite asserts that
every referenced path exists, so the mapping cannot rot silently.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Artifact:
    """One paper artifact (table, figure, listing, or section claim)."""

    ref: str                  # e.g. "Table 2", "Listing 1", "§3.4"
    claim: str                # what the paper shows there
    reproduced_by: tuple[str, ...]   # repo paths (module or test)
    notes: str = ""


ARTIFACTS: tuple[Artifact, ...] = (
    Artifact(
        "Figure 1", "the seven PQS steps",
        ("src/repro/core/__init__.py", "src/repro/core/runner.py")),
    Artifact(
        "Algorithm 1", "generateExpression(depth)",
        ("src/repro/core/exprgen.py", "tests/core/test_exprgen.py")),
    Artifact(
        "Algorithm 2", "AST-interpreter execute()",
        ("src/repro/interp/base.py",
         "tests/interp/test_sqlite_differential.py")),
    Artifact(
        "Algorithm 3", "rectifyCondition()",
        ("src/repro/core/rectify.py", "tests/core/test_rectify.py")),
    Artifact(
        "Table 1", "targets: SQLite, MySQL, PostgreSQL",
        ("src/repro/dialects/sqlite.py", "src/repro/dialects/mysql.py",
         "src/repro/dialects/postgres.py"),
        "live servers replaced by MiniDB dialects (DESIGN.md §1)"),
    Artifact(
        "Table 2", "reported bugs and status per DBMS",
        ("benchmarks/bench_table2_bug_reports.py",)),
    Artifact(
        "Table 3", "bugs per oracle (contains/error/segfault)",
        ("benchmarks/bench_table3_oracles.py",)),
    Artifact(
        "Table 4", "component LOC and DBMS coverage",
        ("benchmarks/bench_table4_loc_coverage.py",)),
    Artifact(
        "Figure 2", "CDF of reduced test-case LOC",
        ("benchmarks/bench_fig2_testcase_loc.py",
         "src/repro/core/reducer.py")),
    Artifact(
        "Figure 3", "statement distribution in bug reports",
        ("benchmarks/bench_fig3_statement_distribution.py",
         "src/repro/campaigns/metrics.py")),
    Artifact(
        "Listing 1", "partial-index IS NOT implication (critical)",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as sqlite-partial-index-is-not"),
    Artifact(
        "Listing 2", "'' - 2851427734582196970 exactness",
        ("tests/interp/test_sqlite_semantics.py",
         "tests/test_paper_listings.py")),
    Artifact(
        "Listing 3", "SET key_cache_division_limit error",
        ("tests/minidb/test_bugs.py",),
        "injected as mysql-set-option-error"),
    Artifact(
        "Listing 4", "NOCASE index on WITHOUT ROWID table",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as sqlite-nocase-unique-without-rowid"),
    Artifact(
        "Listing 5", "RTRIM collation bug",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as sqlite-rtrim-compare"),
    Artifact(
        "Listing 6", "skip-scan DISTINCT after ANALYZE",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as sqlite-skip-scan-distinct"),
    Artifact(
        "Listing 7", "LIKE optimization vs INT affinity",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as sqlite-like-affinity-opt"),
    Artifact(
        "Listing 8", "double-quoted strings in indexes",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as sqlite-rename-expr-index"),
    Artifact(
        "Listing 9", "case_sensitive_like schema mismatch",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as sqlite-case-sensitive-like-index; still a "
        "documented quirk of modern SQLite"),
    Artifact(
        "Listing 10", "REAL PRIMARY KEY corruption",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as sqlite-real-pk-corrupt"),
    Artifact(
        "Listing 11", "MEMORY engine join bug",
        ("tests/minidb/test_bugs.py",),
        "injected as mysql-memory-engine-join"),
    Artifact(
        "Listing 12", "<=> vs out-of-range constant",
        ("tests/minidb/test_bugs.py",),
        "injected as mysql-nullsafe-range"),
    Artifact(
        "Listing 13", "double negation optimization",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as mysql-double-negation"),
    Artifact(
        "Listing 14", "CHECK TABLE FOR UPGRADE segfault "
                      "(CVE-2019-2879)",
        ("tests/minidb/test_bugs.py",),
        "injected as mysql-check-table-crash"),
    Artifact(
        "Listing 15", "inheritance GROUP BY",
        ("tests/minidb/test_bugs.py", "tests/test_paper_listings.py"),
        "injected as pg-inherit-groupby"),
    Artifact(
        "Listing 16", "negative bitmapset member",
        ("tests/minidb/test_bugs.py",),
        "injected as pg-stats-bitmap-error"),
    Artifact(
        "Listing 17", "unexpected null value in index",
        ("tests/minidb/test_bugs.py",),
        "injected as pg-index-null-error"),
    Artifact(
        "Listing 18", "VACUUM integer out of range",
        ("tests/minidb/test_bugs.py",),
        "injected as pg-vacuum-int-overflow (triage: intended)"),
    Artifact(
        "§4.4 REINDEX errors", "6 bugs via UNIQUE failures on REINDEX",
        ("tests/minidb/test_bugs.py",),
        "injected as sqlite-reindex-unique"),
    Artifact(
        "§4.2 SQLite crashes", "2 SQLite SEGFAULTs",
        ("tests/minidb/test_bugs.py",),
        "injected as sqlite-alter-add-crash"),
    Artifact(
        "§4.5 unsigned bugs", "4 unsigned-integer bugs",
        ("tests/minidb/test_bugs.py",),
        "injected as mysql-unsigned-cast-compare"),
    Artifact(
        "§4.5 value-range bugs", "'0.5' TEXT falsy in boolean context",
        ("tests/minidb/test_bugs.py",),
        "injected as mysql-text-double-bool"),
    Artifact(
        "§4.3 REPAIR TABLE", "REPAIR/CHECK TABLE were error prone",
        ("tests/minidb/test_bugs.py",),
        "injected as mysql-repair-memory-error"),
    Artifact(
        "§4.6 duplicates", "crash duplicates of the bitmapset bug",
        ("tests/minidb/test_bugs.py",),
        "injected as pg-statistics-crash (triage: duplicate)"),
    Artifact(
        "§3.3", "error oracle and expected-error lists",
        ("src/repro/core/error_oracle.py",
         "tests/core/test_error_oracle.py")),
    Artifact(
        "§3.4 rows", "10-30 rows per table",
        ("benchmarks/bench_ablation_rows.py",)),
    Artifact(
        "§3.4 throughput", "5k-20k statements/second",
        ("benchmarks/bench_throughput.py",)),
    Artifact(
        "§3.4 threads", "thread per database",
        ("src/repro/campaigns/parallel.py",
         "tests/campaigns/test_parallel.py")),
    Artifact(
        "§3.4 expressions on columns", "projected-expression checking",
        ("src/repro/core/querygen.py", "tests/core/test_pivot_querygen.py")),
    Artifact(
        "§4.3 constraints", "UNIQUE/PK/index occurrence stats",
        ("src/repro/campaigns/metrics.py",
         "tests/campaigns/test_metrics.py")),
    Artifact(
        "§7 negative containment", "pivot row NOT contained",
        ("src/repro/core/rectify.py", "tests/core/test_negative_mode.py"),
        "implemented future-work extension"),
    Artifact(
        "§7 plan guidance", "steer generation toward unseen query plans",
        ("src/repro/guidance/scheduler.py", "benchmarks/bench_guidance.py",
         "tests/guidance/test_runner_guidance.py"),
        "follow-up work (Ba & Rigger, query-plan guidance) as extension"),
    Artifact(
        "§7 multi-plan", "execute each query under every distinct plan",
        ("src/repro/multiplan/oracle.py", "benchmarks/bench_multiplan.py",
         "tests/minidb/test_multiplan_bugs.py"),
        "differential-plan extension (DESIGN.md §12): forced plans must "
        "agree on the row multiset; reaches the injected "
        "sqlite-forced-index-fencepost, sqlite-stale-stats-join, and "
        "sqlite-like-prefix-range planner defects the containment "
        "oracle cannot see"),
    Artifact(
        "§7 plan timing", "score the planner against its best forced plan",
        ("src/repro/plantime/collector.py", "benchmarks/bench_plantime.py",
         "tests/campaigns/test_plantime_campaign.py"),
        "TAQO-style optimizer observatory (DESIGN.md §13): min-of-k "
        "per-plan timings aggregated by query shape into mergeable "
        "archives; pqs optreport diffs two archives into new/fixed/"
        "worsened planner regressions"),
)


def format_index() -> str:
    lines = []
    for artifact in ARTIFACTS:
        lines.append(f"{artifact.ref:<14} {artifact.claim}")
        for path in artifact.reproduced_by:
            lines.append(f"{'':<14}   -> {path}")
        if artifact.notes:
            lines.append(f"{'':<14}   ({artifact.notes})")
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_index())
