"""Dialect descriptors: what the generator may emit per system under test.

The paper's central practical point is that SQL dialects differ so much
that differential testing fails and per-DBMS implementations are needed
(§2, §5).  SQLancer encodes those differences in per-DBMS components; we
encode them declaratively here and parameterize one generator with them.

A :class:`Dialect` describes the *testable fragment*: the operators,
functions, casts, types, collations and statement forms that (a) the
target accepts and (b) the oracle interpreter models exactly.  The PQS
generator never steps outside this fragment — the same discipline that
let the paper's authors keep their AST interpreter exact.
"""

from repro.dialects.base import Dialect, FunctionSig
from repro.dialects.mysql import MYSQL_DIALECT
from repro.dialects.postgres import POSTGRES_DIALECT
from repro.dialects.sqlite import SQLITE_DIALECT

_DIALECTS = {
    "sqlite": SQLITE_DIALECT,
    "mysql": MYSQL_DIALECT,
    "postgres": POSTGRES_DIALECT,
}


def get_dialect(name: str) -> Dialect:
    try:
        return _DIALECTS[name]
    except KeyError:
        raise ValueError(f"unknown dialect: {name!r}") from None


def dialect_names() -> list[str]:
    return list(_DIALECTS)


__all__ = [
    "Dialect",
    "FunctionSig",
    "MYSQL_DIALECT",
    "POSTGRES_DIALECT",
    "SQLITE_DIALECT",
    "dialect_names",
    "get_dialect",
]
