"""The :class:`Dialect` descriptor consumed by every generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sqlast.nodes import BinaryOp, PostfixOp, UnaryOp


@dataclass(frozen=True, slots=True)
class FunctionSig:
    """A scalar function the generator may emit for a dialect."""

    name: str
    min_arity: int
    max_arity: int
    #: PostgreSQL needs typed generation; this is the coarse result type
    #: bucket ('any' for the dynamically-typed dialects).
    result: str = "any"
    #: Argument type constraint for strict dialects ('any', 'number',
    #: 'text').
    args: str = "any"


@dataclass(frozen=True)
class Dialect:
    """Everything the PQS generator needs to know about one target."""

    name: str
    #: Candidate declared column types (None = untyped, sqlite only).
    column_types: tuple[Optional[str], ...]
    #: Collation names usable in COLLATE clauses and column definitions.
    collations: tuple[str, ...] = ()
    #: CAST target type names.
    cast_types: tuple[str, ...] = ()
    binary_ops: tuple[BinaryOp, ...] = ()
    unary_ops: tuple[UnaryOp, ...] = ()
    postfix_ops: tuple[PostfixOp, ...] = ()
    functions: tuple[FunctionSig, ...] = ()
    #: WHERE requires a boolean-typed expression (PostgreSQL).
    boolean_root: bool = False
    #: Feature switches mirroring the paper's per-DBMS feature lists.
    supports_glob: bool = False
    supports_without_rowid: bool = False
    supports_partial_indexes: bool = False
    supports_expression_indexes: bool = True
    supports_collate_in_index: bool = False
    supports_views: bool = True
    supports_inherits: bool = False
    engines: tuple[str, ...] = ()
    #: Maintenance statements the state generator may emit.
    maintenance: tuple[str, ...] = ()
    #: (option_name, candidate_values) pairs for PRAGMA/SET generation.
    options: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: How the schema is introspected ('sqlite_master' or
    #: 'information_schema.tables') — the paper queries DBMS state rather
    #: than tracking it (§3.4), and so do our adapters.
    schema_table: str = "sqlite_master"
    #: Statement used to enable test-relevant conflict clauses.
    supports_or_ignore: bool = False
    supports_or_replace: bool = False

    def function(self, name: str) -> FunctionSig:
        for sig in self.functions:
            if sig.name == name:
                return sig
        raise KeyError(name)


#: Operators shared by every dialect's testable fragment.
COMMON_BINARY_OPS = (
    BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV,
    BinaryOp.EQ, BinaryOp.NE, BinaryOp.LT, BinaryOp.LE, BinaryOp.GT,
    BinaryOp.GE, BinaryOp.AND, BinaryOp.OR, BinaryOp.LIKE,
    BinaryOp.NOT_LIKE, BinaryOp.CONCAT,
)

COMMON_UNARY_OPS = (UnaryOp.NOT, UnaryOp.MINUS, UnaryOp.PLUS)

COMMON_POSTFIX_OPS = (
    PostfixOp.ISNULL, PostfixOp.NOTNULL, PostfixOp.IS_TRUE,
    PostfixOp.IS_FALSE, PostfixOp.IS_NOT_TRUE, PostfixOp.IS_NOT_FALSE,
)
