"""The PostgreSQL dialect descriptor.

Per the paper (§2, §4.6): strict typing with few implicit conversions
(hence ``boolean_root=True`` — generated WHERE conditions must be
boolean-typed, §3.2), table inheritance, SERIAL, and the
DISCARD/CREATE STATISTICS statements unique to PostgreSQL.
"""

from __future__ import annotations

from repro.dialects.base import Dialect, FunctionSig
from repro.sqlast.nodes import BinaryOp, PostfixOp, UnaryOp

POSTGRES_DIALECT = Dialect(
    name="postgres",
    column_types=("INT", "BIGINT", "FLOAT8", "TEXT", "BOOLEAN", "SERIAL"),
    collations=(),
    cast_types=("INT", "FLOAT8", "TEXT", "BOOLEAN"),
    binary_ops=(
        BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV,
        BinaryOp.MOD, BinaryOp.EQ, BinaryOp.NE, BinaryOp.LT, BinaryOp.LE,
        BinaryOp.GT, BinaryOp.GE, BinaryOp.IS, BinaryOp.IS_NOT,
        BinaryOp.AND, BinaryOp.OR, BinaryOp.LIKE, BinaryOp.NOT_LIKE,
        BinaryOp.CONCAT, BinaryOp.BITAND, BinaryOp.BITOR,
    ),
    unary_ops=(UnaryOp.NOT, UnaryOp.MINUS, UnaryOp.PLUS, UnaryOp.BITNOT),
    postfix_ops=(PostfixOp.ISNULL, PostfixOp.NOTNULL, PostfixOp.IS_TRUE,
                 PostfixOp.IS_FALSE, PostfixOp.IS_NOT_TRUE,
                 PostfixOp.IS_NOT_FALSE),
    functions=(
        FunctionSig("ABS", 1, 1, result="number", args="number"),
        FunctionSig("COALESCE", 2, 4),
        FunctionSig("GREATEST", 2, 4),
        FunctionSig("LEAST", 2, 4),
        FunctionSig("LENGTH", 1, 1, result="number", args="text"),
        FunctionSig("LOWER", 1, 1, result="text", args="text"),
        FunctionSig("NULLIF", 2, 2),
        FunctionSig("UPPER", 1, 1, result="text", args="text"),
    ),
    boolean_root=True,
    supports_partial_indexes=True,
    supports_expression_indexes=True,
    supports_collate_in_index=False,
    supports_views=True,
    supports_inherits=True,
    maintenance=("VACUUM", "VACUUM FULL", "REINDEX", "ANALYZE", "DISCARD",
                 "CREATE STATISTICS"),
    options=(
        ("enable_seqscan", ("'on'", "'off'")),
        ("enable_indexscan", ("'on'", "'off'")),
        ("work_mem", ("'64kB'", "'4MB'")),
    ),
    schema_table="information_schema.tables",
    supports_or_ignore=False,
    supports_or_replace=False,
)
