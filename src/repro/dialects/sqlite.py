"""The SQLite dialect descriptor.

Mirrors the paper's characterization (§2): the most flexible dialect —
untyped columns, implicit conversions everywhere, COLLATE sequences,
WITHOUT ROWID tables, partial and expression indexes, GLOB, PRAGMAs —
which is exactly why the paper found the most bugs here.
"""

from __future__ import annotations

from repro.dialects.base import (
    COMMON_BINARY_OPS,
    COMMON_POSTFIX_OPS,
    COMMON_UNARY_OPS,
    Dialect,
    FunctionSig,
)
from repro.sqlast.nodes import BinaryOp, UnaryOp

SQLITE_DIALECT = Dialect(
    name="sqlite",
    column_types=(None, "INT", "INTEGER", "TEXT", "REAL", "BLOB",
                  "NUMERIC"),
    collations=("BINARY", "NOCASE", "RTRIM"),
    cast_types=("INTEGER", "REAL", "TEXT", "BLOB", "NUMERIC"),
    binary_ops=COMMON_BINARY_OPS + (
        BinaryOp.MOD, BinaryOp.IS, BinaryOp.IS_NOT, BinaryOp.GLOB,
        BinaryOp.BITAND, BinaryOp.BITOR, BinaryOp.SHL, BinaryOp.SHR,
    ),
    unary_ops=COMMON_UNARY_OPS + (UnaryOp.BITNOT,),
    postfix_ops=COMMON_POSTFIX_OPS,
    functions=(
        FunctionSig("ABS", 1, 1, result="number"),
        FunctionSig("COALESCE", 2, 4),
        FunctionSig("HEX", 1, 1, result="text"),
        FunctionSig("IFNULL", 2, 2),
        FunctionSig("INSTR", 2, 2, result="number"),
        FunctionSig("LENGTH", 1, 1, result="number"),
        FunctionSig("LOWER", 1, 1, result="text"),
        FunctionSig("LTRIM", 1, 2, result="text"),
        FunctionSig("MAX", 2, 4),
        FunctionSig("MIN", 2, 4),
        FunctionSig("NULLIF", 2, 2),
        FunctionSig("ROUND", 1, 1, result="number"),
        FunctionSig("RTRIM", 1, 2, result="text"),
        FunctionSig("SUBSTR", 2, 3, result="text"),
        FunctionSig("TRIM", 1, 2, result="text"),
        FunctionSig("TYPEOF", 1, 1, result="text"),
        FunctionSig("UPPER", 1, 1, result="text"),
    ),
    supports_glob=True,
    supports_without_rowid=True,
    supports_partial_indexes=True,
    supports_expression_indexes=True,
    supports_collate_in_index=True,
    supports_views=True,
    maintenance=("VACUUM", "REINDEX", "ANALYZE"),
    options=(
        ("case_sensitive_like", ("0", "1")),
        ("reverse_unordered_selects", ("0", "1")),
        ("automatic_index", ("0", "1")),
    ),
    schema_table="sqlite_master",
    supports_or_ignore=True,
    supports_or_replace=True,
)
