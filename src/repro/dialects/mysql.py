"""The MySQL dialect descriptor.

Per the paper (§2, §4.5): typed columns with ranges, unsigned integer
types, the null-safe ``<=>`` operator, storage engines assignable per
table, and the CHECK/REPAIR TABLE maintenance statements unique to MySQL.
"""

from __future__ import annotations

from repro.dialects.base import (
    COMMON_BINARY_OPS,
    COMMON_POSTFIX_OPS,
    COMMON_UNARY_OPS,
    Dialect,
    FunctionSig,
)
from repro.sqlast.nodes import BinaryOp, UnaryOp

MYSQL_DIALECT = Dialect(
    name="mysql",
    column_types=("TINYINT", "SMALLINT", "INT", "BIGINT",
                  "INT UNSIGNED", "TINYINT UNSIGNED", "BIGINT UNSIGNED",
                  "DOUBLE", "TEXT", "VARCHAR", "BLOB"),
    collations=(),
    cast_types=("SIGNED", "UNSIGNED", "CHAR", "DOUBLE"),
    binary_ops=COMMON_BINARY_OPS + (
        BinaryOp.MOD, BinaryOp.NULL_SAFE_EQ, BinaryOp.IS, BinaryOp.IS_NOT,
        BinaryOp.BITAND, BinaryOp.BITOR, BinaryOp.SHL, BinaryOp.SHR,
    ),
    unary_ops=COMMON_UNARY_OPS + (UnaryOp.BITNOT,),
    postfix_ops=COMMON_POSTFIX_OPS,
    functions=(
        FunctionSig("ABS", 1, 1, result="number"),
        FunctionSig("COALESCE", 2, 4),
        FunctionSig("GREATEST", 2, 4),
        FunctionSig("IFNULL", 2, 2),
        FunctionSig("INSTR", 2, 2, result="number"),
        FunctionSig("LEAST", 2, 4),
        FunctionSig("LENGTH", 1, 1, result="number"),
        FunctionSig("LOWER", 1, 1, result="text"),
        FunctionSig("NULLIF", 2, 2),
        FunctionSig("ROUND", 1, 1, result="number"),
        FunctionSig("SUBSTR", 2, 3, result="text"),
        FunctionSig("UPPER", 1, 1, result="text"),
    ),
    supports_partial_indexes=False,
    supports_expression_indexes=True,
    supports_collate_in_index=False,
    supports_views=True,
    engines=("INNODB", "MEMORY"),
    maintenance=("ANALYZE", "CHECK TABLE", "REPAIR TABLE"),
    options=(
        ("key_cache_division_limit", ("50", "100")),
        ("sql_buffer_result", ("0", "1")),
        ("max_heap_table_size", ("16384", "65536")),
    ),
    schema_table="information_schema.tables",
    supports_or_ignore=True,   # modeled after INSERT IGNORE
    supports_or_replace=False,
)
