"""The campaign work queue: round indexes as stealable units of work.

The static per-thread shard split (worker *i* owns rounds
``i*k .. i*k+k-1``) had a failure mode the paper's long-running hunts
cannot afford: a dead or slow worker silently loses its whole shard.
:class:`RoundQueue` replaces it with a shared queue of round indexes —
any worker leases the next pending round, a failed or abandoned lease is
*requeued* for someone else, and a round that keeps failing is
*quarantined* after a bounded number of attempts instead of aborting the
campaign.

Because every round derives its own seed
(:func:`~repro.campaigns.journal.round_seed`), a round's outcome is
independent of which worker runs it and when; the queue therefore makes
worker death a scheduling event, not a data-loss event.  Completion is
idempotent — a stalled worker whose lease was stolen may finish late and
its duplicate result is simply dropped (and deduplicated on journal
load).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Optional

from repro.campaigns.journal import QuarantineRecord, RoundRecord, round_seed


class RoundQueue:
    """Thread-safe work-stealing queue of campaign round indexes.

    Lifecycle of one round: ``pending`` → leased (by :meth:`lease`) →
    either completed (:meth:`complete`), requeued (:meth:`fail` under
    the threshold, or :meth:`release` when its worker died), or
    quarantined (:meth:`fail` at the threshold).  :meth:`lease` blocks
    while the queue is merely *empty* (a requeue may still arrive) and
    returns None once every round is settled or :meth:`abort` was
    called.
    """

    def __init__(self, indexes: Iterable[int], campaign_seed: int,
                 quarantine_threshold: int = 3):
        self._pending = deque(sorted(indexes))
        self._campaign_seed = campaign_seed
        self.quarantine_threshold = max(1, quarantine_threshold)
        self._total = len(self._pending)
        #: index -> worker slot currently holding the lease.
        self._leases: dict[int, int] = {}
        #: index -> failed attempts so far.
        self._attempts: dict[int, int] = {}
        self.completed: dict[int, RoundRecord] = {}
        #: index -> slot that completed it (None for preloaded rounds).
        self.completed_by: dict[int, Optional[int]] = {}
        self.quarantined: dict[int, QuarantineRecord] = {}
        self._aborted = False
        #: Worker ids barred from leasing (stalled incarnations whose
        #: leases were stolen); their in-flight completions still count.
        self._retired_workers: set[int] = set()
        self._cond = threading.Condition()

    # -- preloading (journal resume) ----------------------------------------
    def preload(self, rounds: dict[int, RoundRecord],
                quarantined: dict[int, QuarantineRecord]) -> None:
        """Mark journal-recovered rounds as already settled."""
        with self._cond:
            for index, record in rounds.items():
                if index in self._leases or index not in self._pending:
                    continue
                self._pending.remove(index)
                self.completed[index] = record
                self.completed_by[index] = None
            for index, record in quarantined.items():
                if index not in self._pending:
                    continue
                self._pending.remove(index)
                self.quarantined[index] = record
            self._cond.notify_all()

    # -- worker-facing ------------------------------------------------------
    def lease(self, slot: int) -> Optional[int]:
        """Next round index for *slot*; None when the queue is done."""
        with self._cond:
            while True:
                if self._aborted or self._settled_locked() \
                        or slot in self._retired_workers:
                    self._cond.notify_all()
                    return None
                if self._pending:
                    index = self._pending.popleft()
                    self._leases[index] = slot
                    return index
                # Empty but not settled: leased rounds may be requeued.
                self._cond.wait(timeout=0.05)

    def complete(self, index: int, record: RoundRecord,
                 slot: Optional[int] = None) -> bool:
        """Settle *index* with *record*; False if it already settled
        (a late finish after the lease was stolen)."""
        with self._cond:
            self._leases.pop(index, None)
            if index in self.completed or index in self.quarantined:
                self._cond.notify_all()
                return False
            self.completed[index] = record
            self.completed_by[index] = slot
            self._cond.notify_all()
            return True

    def fail(self, index: int, error: str) -> Optional[QuarantineRecord]:
        """Record a failed attempt; requeue or quarantine.

        Returns the :class:`QuarantineRecord` when the round just hit
        the threshold (the caller journals it), None when it was
        requeued for another attempt.
        """
        with self._cond:
            self._leases.pop(index, None)
            if index in self.completed or index in self.quarantined:
                self._cond.notify_all()
                return None
            attempts = self._attempts.get(index, 0) + 1
            self._attempts[index] = attempts
            if attempts >= self.quarantine_threshold:
                record = QuarantineRecord(
                    index=index,
                    seed=round_seed(self._campaign_seed, index),
                    attempts=attempts, error=error)
                self.quarantined[index] = record
                self._cond.notify_all()
                return record
            self._pending.append(index)
            self._cond.notify_all()
            return None

    def attempts(self, index: int) -> int:
        with self._cond:
            return self._attempts.get(index, 0)

    # -- supervisor-facing --------------------------------------------------
    def release(self, slot: int) -> list[int]:
        """Requeue every round leased to *slot* (worker died or
        stalled); returns the stolen indexes."""
        with self._cond:
            stolen = sorted(i for i, s in self._leases.items()
                            if s == slot)
            for index in stolen:
                del self._leases[index]
                self._pending.append(index)
            if stolen:
                self._cond.notify_all()
            return stolen

    def retire_worker(self, slot: int) -> None:
        """Bar *slot* from future leases (a stalled zombie must not
        pick up fresh work after its leases were stolen)."""
        with self._cond:
            self._retired_workers.add(slot)
            self._cond.notify_all()

    def abort(self) -> None:
        """Give up: wake every blocked worker with None."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def _settled_locked(self) -> bool:
        return len(self.completed) + len(self.quarantined) >= self._total

    @property
    def settled(self) -> bool:
        """Every round completed or quarantined."""
        with self._cond:
            return self._settled_locked()

    @property
    def aborted(self) -> bool:
        with self._cond:
            return self._aborted

    @property
    def outstanding(self) -> int:
        """Rounds not yet settled (pending + leased)."""
        with self._cond:
            return self._total - len(self.completed) - len(self.quarantined)

    @property
    def total(self) -> int:
        return self._total

    def counts(self) -> dict[str, int]:
        """One consistent snapshot of the queue's bookkeeping — the
        status service reads this instead of racing four properties."""
        with self._cond:
            completed = len(self.completed)
            quarantined = len(self.quarantined)
            leased = len(self._leases)
            return {"total": self._total, "completed": completed,
                    "quarantined": quarantined, "leased": leased,
                    "pending": (self._total - completed - quarantined
                                - leased)}

    def records_in_order(self) -> list[RoundRecord]:
        """Completed records sorted by round index — merge in this
        order and the result is independent of worker scheduling."""
        with self._cond:
            return [self.completed[i] for i in sorted(self.completed)]

    def quarantined_in_order(self) -> list[QuarantineRecord]:
        with self._cond:
            return [self.quarantined[i] for i in sorted(self.quarantined)]
