"""Statistics over reduced bug reports — the paper's §4.3 measurements.

* :func:`testcase_loc_cdf` — Figure 2's cumulative distribution of
  reduced test-case statement counts;
* :func:`statement_distribution` — Figure 3's per-statement-kind
  occurrence percentages, keyed by the triggering oracle;
* :func:`constraint_statistics` — the UNIQUE / PRIMARY KEY /
  CREATE INDEX occurrence shares reported in §4.3.
"""

from __future__ import annotations

import re
from collections import Counter

from repro.core.error_oracle import statement_kind
from repro.core.reports import BugReport

#: Figure 3's statement categories, normalized across dialects.
FIGURE3_CATEGORIES = [
    "CREATE TABLE", "INSERT", "SELECT", "CREATE INDEX", "ALTER TABLE",
    "UPDATE", "OPTION", "ANALYZE", "REINDEX", "VACUUM", "CREATE VIEW",
    "DELETE", "TRANSACTION", "DROP INDEX", "DROP TABLE", "DROP VIEW",
    "REPAIR/CHECK TABLE", "DROP/CREATE/USE DB", "DISCARD",
    "CREATE STATS",
]


def classify_statement(sql: str) -> str:
    """Map a statement onto Figure 3's category names."""
    kind = statement_kind(sql)
    if kind in ("PRAGMA", "SET"):
        return "OPTION"
    if kind == "ALTER":
        return "ALTER TABLE"
    if kind in ("CHECK TABLE", "REPAIR TABLE"):
        return "REPAIR/CHECK TABLE"
    if kind in ("BEGIN", "COMMIT", "ROLLBACK"):
        return "TRANSACTION"
    if kind == "CREATE STATISTICS":
        return "CREATE STATS"
    if kind == "DROP":
        # statement_kind collapses every DROP to one keyword; Figure 3
        # separates them, so look at the dropped object class.
        words = sql.strip().upper().split()
        target = words[1] if len(words) > 1 else ""
        if target == "INDEX":
            return "DROP INDEX"
        if target in ("DATABASE", "SCHEMA"):
            return "DROP/CREATE/USE DB"
        if target == "VIEW":
            return "DROP VIEW"
        return "DROP TABLE"
    return kind


def testcase_loc_cdf(reports: list[BugReport],
                     ) -> list[tuple[int, float]]:
    """(loc, cumulative_fraction) points — the paper's Figure 2."""
    if not reports:
        return []
    locs = sorted(report.test_case.loc for report in reports)
    total = len(locs)
    points = []
    for loc in sorted(set(locs)):
        covered = sum(1 for value in locs if value <= loc)
        points.append((loc, covered / total))
    return points


def mean_loc(reports: list[BugReport]) -> float:
    """Mean reduced test-case length (the paper reports 3.71)."""
    if not reports:
        return 0.0
    return sum(r.test_case.loc for r in reports) / len(reports)


def statement_distribution(reports: list[BugReport],
                           ) -> dict[str, dict[str, float]]:
    """category -> {'share': fraction of test cases containing it,
    'trigger_<oracle>': fraction where it was the *final* (triggering)
    statement} — the paper's Figure 3."""
    if not reports:
        return {}
    containing: Counter = Counter()
    triggering: dict[str, Counter] = {}
    for report in reports:
        categories = {classify_statement(sql)
                      for sql in report.test_case.statements}
        for category in categories:
            containing[category] += 1
        final_category = classify_statement(
            report.test_case.statements[-1])
        triggering.setdefault(final_category, Counter())[
            report.oracle.value] += 1
    total = len(reports)
    out: dict[str, dict[str, float]] = {}
    for category, count in containing.items():
        entry = {"share": count / total}
        for oracle, n in triggering.get(category, {}).items():
            entry[f"trigger_{oracle}"] = n / total
        out[category] = entry
    return out


def constraint_statistics(reports: list[BugReport]) -> dict[str, float]:
    """Fractions of test cases using UNIQUE / PRIMARY KEY / explicit
    indexes / FOREIGN KEY (paper §4.3: 22.2% / 17.2% / 28.3% / 1.0%)."""
    if not reports:
        return {}
    patterns = {
        "UNIQUE": r"\bUNIQUE\b",
        "PRIMARY KEY": r"\bPRIMARY\s+KEY\b",
        "CREATE INDEX": r"\bCREATE\s+(UNIQUE\s+)?INDEX\b",
        "FOREIGN KEY": r"\bFOREIGN\s+KEY\b",
    }
    counts = {name: 0 for name in patterns}
    for report in reports:
        text = " ".join(report.test_case.statements)
        for name, pattern in patterns.items():
            if re.search(pattern, text, re.IGNORECASE):
                counts[name] += 1
    total = len(reports)
    return {name: count / total for name, count in counts.items()}


def single_table_fraction(reports: list[BugReport]) -> float:
    """Fraction of reports whose test case creates exactly one table
    (the paper reports 90.0%)."""
    if not reports:
        return 0.0
    single = 0
    for report in reports:
        creates = sum(
            1 for sql in report.test_case.statements
            if classify_statement(sql) == "CREATE TABLE")
        if creates <= 1:
            single += 1
    return single / len(reports)
