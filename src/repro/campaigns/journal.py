"""Campaign durability: a JSONL journal of per-database results.

A journaled campaign writes one line per completed database round as it
runs, so an interrupted hunt (crash of the *tool* host, SIGKILL, power
loss) can continue with ``resume=True`` instead of starting over.  The
file layout is append-only JSONL:

* line 1 — a header fingerprinting the campaign (dialect, seed,
  database count, enabled defects, journal version); resuming under a
  different configuration is an error, not silent corruption;
* each further line — one database round: its index, derived seed,
  counters, and raw (pre-reduction) findings serialized via
  :meth:`~repro.core.reports.BugReport.to_json`.

Journaled campaigns derive an **independent seed per round**
(:func:`round_seed`) so round *i* can be re-run — or skipped on resume —
without replaying rounds ``0..i-1`` through the RNG.  A truncated final
line (the tool died mid-write) is discarded on load; that round simply
re-runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional, TextIO

from repro.core.reports import BugReport
from repro.errors import PQSError

JOURNAL_VERSION = 1

#: SplitMix64-style constants; any fixed odd multipliers would do.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX = 0xBF58476D1CE4E5B9


def round_seed(campaign_seed: int, index: int) -> int:
    """Deterministic, campaign-global seed for database round *index*."""
    x = (campaign_seed * _GOLDEN + (index + 1) * _MIX) % 2**64
    x ^= x >> 31
    return (x * _GOLDEN) % 2**63


@dataclass
class RoundRecord:
    """One journaled database round."""

    index: int
    seed: int
    statements: int = 0
    queries: int = 0
    pivots: int = 0
    expected_errors: int = 0
    timeouts: int = 0
    #: Wall-clock seconds the round took when it actually ran — carried
    #: in the journal so a --resume continuation reports the same
    #: throughput an uninterrupted run would have.
    seconds: float = 0.0
    reports: list[BugReport] = field(default_factory=list)
    #: Novel (plan fingerprint, example SQL) pairs the round discovered
    #: under plan-coverage guidance; empty when guidance is off.  Carried
    #: in the journal so ``--resume`` reconstructs the guidance seen-set
    #: and scheduler pool without re-running completed rounds.
    plans: list[tuple[str, str]] = field(default_factory=list)

    def to_json(self) -> dict:
        data = {"kind": "round", "index": self.index, "seed": self.seed,
                "statements": self.statements, "queries": self.queries,
                "pivots": self.pivots,
                "expected_errors": self.expected_errors,
                "timeouts": self.timeouts, "seconds": self.seconds,
                "reports": [r.to_json() for r in self.reports]}
        if self.plans:
            data["plans"] = [[fp, example] for fp, example in self.plans]
        return data

    @staticmethod
    def from_json(data: dict) -> "RoundRecord":
        return RoundRecord(
            index=data["index"], seed=data["seed"],
            statements=data.get("statements", 0),
            queries=data.get("queries", 0),
            pivots=data.get("pivots", 0),
            expected_errors=data.get("expected_errors", 0),
            timeouts=data.get("timeouts", 0),
            seconds=data.get("seconds", 0.0),
            reports=[BugReport.from_json(r)
                     for r in data.get("reports", [])],
            plans=[(fp, example)
                   for fp, example in data.get("plans", [])])


class CampaignJournal:
    """Append-only JSONL journal for one campaign."""

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[TextIO] = None

    # -- reading ------------------------------------------------------------
    def load(self, fingerprint: dict) -> dict[int, RoundRecord]:
        """Completed rounds from an existing journal (``{}`` if absent).

        Raises :class:`~repro.errors.PQSError` when the journal was
        written by a differently-configured campaign.
        """
        if not os.path.exists(self.path):
            return {}
        completed: dict[int, RoundRecord] = {}
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise PQSError(f"journal {self.path}: unreadable header")
        if header.get("kind") != "header":
            raise PQSError(f"journal {self.path}: missing header line")
        recorded = {k: v for k, v in header.items() if k != "kind"}
        if recorded != fingerprint:
            raise PQSError(
                f"journal {self.path} was written by a different "
                f"campaign: {recorded!r} != {fingerprint!r}")
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                break  # torn final write — that round re-runs
            if data.get("kind") != "round":
                continue
            record = RoundRecord.from_json(data)
            completed[record.index] = record
        return completed

    # -- writing ------------------------------------------------------------
    def start(self, fingerprint: dict, fresh: bool) -> None:
        """Open for appending; ``fresh`` truncates and writes the header."""
        if fresh or not os.path.exists(self.path):
            self._handle = open(self.path, "w", encoding="utf-8")
            self._write_line({"kind": "header", **fingerprint})
        else:
            self._handle = open(self.path, "a", encoding="utf-8")

    def append_round(self, record: RoundRecord) -> None:
        assert self._handle is not None, "journal not started"
        self._write_line(record.to_json())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _write_line(self, data: dict) -> None:
        self._handle.write(json.dumps(data) + "\n")
        # One durable line per database round: a kill between rounds
        # loses nothing, a kill mid-round loses only that round.
        self._handle.flush()
        os.fsync(self._handle.fileno())
