"""Campaign durability: a checksummed JSONL journal of per-round results.

A journaled campaign writes one line per completed database round as it
runs, so an interrupted hunt (crash of the *tool* host, SIGKILL, power
loss) can continue with ``resume=True`` instead of starting over.  The
file layout is append-only JSONL:

* line 1 — a header fingerprinting the campaign (dialect, seed,
  database count, enabled defects, journal version); resuming under a
  different configuration is an error, not silent corruption;
* each further line — one record: a ``round`` (index, derived seed,
  counters, raw pre-reduction findings serialized via
  :meth:`~repro.core.reports.BugReport.to_json`) or a ``quarantine``
  (a poison round retired after exhausting its retry threshold).

**Format v2** adds a per-line CRC32 checksum: every line is plain JSON
carrying a ``crc`` field computed over the canonical serialization of
the rest of the line.  On load, a line that fails to parse *or* fails
its checksum is skipped and counted — not trusted, and crucially not
treated as end-of-file, so one corrupt line in the middle of a journal
no longer drops every later valid round.  Re-run round indexes (a
work-stealing fleet can journal the same round twice when a lease is
stolen from a stalled worker that later finishes) are deduplicated on
load, first occurrence wins.  v1 journals (no checksums) remain
readable: ``crc`` is verified whenever present and required only when
the header declares version ≥ 2.

Journaled campaigns derive an **independent seed per round**
(:func:`round_seed`) so round *i* can be re-run — or skipped on resume —
without replaying rounds ``0..i-1`` through the RNG.  A truncated final
line (the tool died mid-write) is discarded on load; that round simply
re-runs.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Optional, TextIO

from repro.core.reports import BugReport
from repro.errors import PQSError

JOURNAL_VERSION = 2

#: SplitMix64-style constants; any fixed odd multipliers would do.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX = 0xBF58476D1CE4E5B9


def round_seed(campaign_seed: int, index: int) -> int:
    """Deterministic, campaign-global seed for database round *index*."""
    x = (campaign_seed * _GOLDEN + (index + 1) * _MIX) % 2**64
    x ^= x >> 31
    return (x * _GOLDEN) % 2**63


def _canonical(data: dict) -> str:
    """The byte-stable serialization the checksum is computed over."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def line_checksum(data: dict) -> str:
    """CRC32 (hex) of a record's canonical JSON, ``crc`` key excluded."""
    body = {k: v for k, v in data.items() if k != "crc"}
    return format(zlib.crc32(_canonical(body).encode("utf-8")), "08x")


@dataclass
class RoundRecord:
    """One journaled database round."""

    index: int
    seed: int
    statements: int = 0
    queries: int = 0
    pivots: int = 0
    expected_errors: int = 0
    timeouts: int = 0
    #: Wall-clock seconds the round took when it actually ran — carried
    #: in the journal so a --resume continuation reports the same
    #: throughput an uninterrupted run would have.
    seconds: float = 0.0
    reports: list[BugReport] = field(default_factory=list)
    #: Novel (plan fingerprint, example SQL) pairs the round discovered
    #: under plan-coverage guidance; empty when guidance is off.  Carried
    #: in the journal so ``--resume`` reconstructs the guidance seen-set
    #: and scheduler pool without re-running completed rounds.
    plans: list[tuple[str, str]] = field(default_factory=list)
    #: Multi-plan oracle outcome for the round (queries / divergences /
    #: forced_failures / plans-per-query distribution); empty unless
    #: ``--multiplan`` is on.  Carried in the journal so a ``--resume``
    #: continuation reports the same multiplan statistics an
    #: uninterrupted run would — and omitted from the JSON form when
    #: empty so multiplan-off journals stay byte-identical.
    multiplan: dict = field(default_factory=dict)
    #: Per-plan timing outcome for the round (timed query count, plan
    #: timings, PlanRegression records); empty unless ``--plan-timing``
    #: is on.  Carried in the journal so a ``--resume`` continuation
    #: rebuilds the timing archive *byte-identically* without re-timing
    #: completed rounds — and omitted from the JSON form when empty so
    #: timing-off journals stay byte-identical.
    plantime: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        data = {"kind": "round", "index": self.index, "seed": self.seed,
                "statements": self.statements, "queries": self.queries,
                "pivots": self.pivots,
                "expected_errors": self.expected_errors,
                "timeouts": self.timeouts, "seconds": self.seconds,
                "reports": [r.to_json() for r in self.reports]}
        if self.plans:
            data["plans"] = [[fp, example] for fp, example in self.plans]
        if self.multiplan:
            data["multiplan"] = dict(self.multiplan)
        if self.plantime:
            data["plantime"] = dict(self.plantime)
        return data

    @staticmethod
    def from_json(data: dict) -> "RoundRecord":
        return RoundRecord(
            index=data["index"], seed=data["seed"],
            statements=data.get("statements", 0),
            queries=data.get("queries", 0),
            pivots=data.get("pivots", 0),
            expected_errors=data.get("expected_errors", 0),
            timeouts=data.get("timeouts", 0),
            seconds=data.get("seconds", 0.0),
            reports=[BugReport.from_json(r)
                     for r in data.get("reports", [])],
            plans=[(fp, example)
                   for fp, example in data.get("plans", [])],
            multiplan=dict(data.get("multiplan", {})),
            plantime=dict(data.get("plantime", {})))


@dataclass
class QuarantineRecord:
    """A poison round retired after exhausting its retry threshold.

    Quarantine is the campaign-level analogue of the subprocess
    harness's restart budget: a round that fails deterministically
    (e.g. :class:`~repro.errors.HarnessError` on every attempt) is
    journaled and surfaced instead of aborting the whole hunt.
    """

    index: int
    seed: int
    attempts: int
    error: str = ""

    def to_json(self) -> dict:
        return {"kind": "quarantine", "index": self.index,
                "seed": self.seed, "attempts": self.attempts,
                "error": self.error}

    @staticmethod
    def from_json(data: dict) -> "QuarantineRecord":
        return QuarantineRecord(
            index=data["index"], seed=data["seed"],
            attempts=data.get("attempts", 0),
            error=data.get("error", ""))

    def harness_report(self) -> str:
        """A human-readable synthesized report for the final stats."""
        return (f"round {self.index} (seed {self.seed}) quarantined "
                f"after {self.attempts} attempt(s): {self.error}")


@dataclass
class RecoveryStats:
    """What journal recovery had to do while loading."""

    #: Checksum-mismatched or unparseable lines skipped (a torn final
    #: line counts here too).
    corrupt_lines: int = 0
    #: Re-run round indexes deduplicated (first occurrence won).
    duplicate_rounds: int = 0

    @property
    def clean(self) -> bool:
        return not (self.corrupt_lines or self.duplicate_rounds)


@dataclass
class JournalState:
    """Everything :meth:`CampaignJournal.load_state` recovered."""

    rounds: dict[int, RoundRecord] = field(default_factory=dict)
    quarantined: dict[int, QuarantineRecord] = field(default_factory=dict)
    recovery: RecoveryStats = field(default_factory=RecoveryStats)

    @property
    def empty(self) -> bool:
        return not (self.rounds or self.quarantined)


class CampaignJournal:
    """Append-only checksummed JSONL journal for one campaign.

    Thread-safe for writers: a work-stealing fleet's executors append
    to one shared journal, serialized by an internal lock.  Usable as a
    context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[TextIO] = None
        self._lock = threading.Lock()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def closed(self) -> bool:
        return self._handle is None

    # -- reading ------------------------------------------------------------
    def load(self, fingerprint: dict) -> dict[int, RoundRecord]:
        """Completed rounds from an existing journal (``{}`` if absent).

        Raises :class:`~repro.errors.PQSError` when the journal was
        written by a differently-configured campaign.
        """
        return self.load_state(fingerprint).rounds

    def load_state(self, fingerprint: dict) -> JournalState:
        """Full recovery: rounds, quarantines, and recovery counters.

        Corrupt lines (bad JSON or checksum mismatch) are *skipped and
        counted*, never treated as end-of-file; duplicate round indexes
        keep their first occurrence.  Raises
        :class:`~repro.errors.PQSError` when the header is unreadable or
        fingerprints a differently-configured campaign.
        """
        return self._load(fingerprint)[1]

    def read_header(self) -> dict:
        """The header fields of an existing journal, fingerprint-free.

        Offline analytics (``pqs report``) reads a journal it did not
        write — it learns the campaign's dialect, seed, and enabled
        defects *from* the header rather than validating against them.
        Raises :class:`~repro.errors.PQSError` on a missing file or an
        unreadable/corrupt header.
        """
        if not os.path.exists(self.path):
            raise PQSError(f"journal {self.path}: no such file")
        with open(self.path, encoding="utf-8") as handle:
            first = handle.readline().rstrip("\n")
        if not first:
            raise PQSError(f"journal {self.path}: empty file")
        return self._check_header(first, None)

    def load_any(self) -> tuple[dict, JournalState]:
        """Fingerprint-free full load: ``(header, state)``."""
        return self._load(None)

    def _load(self, fingerprint: Optional[dict],
              ) -> tuple[dict, JournalState]:
        state = JournalState()
        if not os.path.exists(self.path):
            if fingerprint is None:
                raise PQSError(f"journal {self.path}: no such file")
            return {}, state
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            if fingerprint is None:
                raise PQSError(f"journal {self.path}: empty file")
            return {}, state
        header = self._check_header(lines[0], fingerprint)
        require_crc = header.get("version", 1) >= 2
        for line in lines[1:]:
            if not line.strip():
                continue
            data = self._check_line(line, require_crc)
            if data is None:
                state.recovery.corrupt_lines += 1
                continue
            kind = data.get("kind")
            if kind == "round":
                record = RoundRecord.from_json(data)
                if record.index in state.rounds:
                    state.recovery.duplicate_rounds += 1
                    continue
                state.rounds[record.index] = record
            elif kind == "quarantine":
                record = QuarantineRecord.from_json(data)
                if record.index in state.quarantined:
                    state.recovery.duplicate_rounds += 1
                    continue
                state.quarantined[record.index] = record
        return header, state

    def _check_header(self, line: str,
                      fingerprint: Optional[dict]) -> dict:
        try:
            header = json.loads(line)
        except json.JSONDecodeError:
            raise PQSError(f"journal {self.path}: unreadable header")
        if header.get("kind") != "header":
            raise PQSError(f"journal {self.path}: missing header line")
        crc = header.get("crc")
        if crc is not None and crc != line_checksum(header):
            raise PQSError(f"journal {self.path}: corrupt header")
        recorded = {k: v for k, v in header.items()
                    if k not in ("kind", "crc")}
        if fingerprint is None:
            # Fingerprint-free read (offline analytics): any valid
            # header is accepted as-is.
            return recorded
        expected = dict(fingerprint)
        if recorded.get("version") == 1 and expected.get("version") == \
                JOURNAL_VERSION:
            # Backward-compatible read: a v1 journal resumes under a v2
            # campaign whose configuration otherwise matches.
            expected["version"] = 1
        if recorded != expected:
            raise PQSError(
                f"journal {self.path} was written by a different "
                f"campaign: {recorded!r} != {fingerprint!r}")
        return recorded

    @staticmethod
    def _check_line(line: str, require_crc: bool) -> Optional[dict]:
        """Parse + verify one record line; None means corrupt."""
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(data, dict):
            return None
        crc = data.get("crc")
        if crc is None:
            return None if require_crc else data
        if crc != line_checksum(data):
            return None
        return data

    # -- writing ------------------------------------------------------------
    def start(self, fingerprint: dict, fresh: bool) -> None:
        """Open for appending; ``fresh`` truncates and writes the header."""
        if fresh or not os.path.exists(self.path):
            self._handle = open(self.path, "w", encoding="utf-8")
            self._write_line({"kind": "header", **fingerprint})
        else:
            self._handle = open(self.path, "a", encoding="utf-8")

    def append_round(self, record: RoundRecord) -> None:
        assert self._handle is not None, "journal not started"
        self._write_line(record.to_json())

    def append_quarantine(self, record: QuarantineRecord) -> None:
        assert self._handle is not None, "journal not started"
        self._write_line(record.to_json())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def _write_line(self, data: dict) -> None:
        data = dict(data)
        data["crc"] = line_checksum(data)
        with self._lock:
            self._handle.write(_canonical(data) + "\n")
            # One durable line per record: a kill between rounds loses
            # nothing, a kill mid-round loses only that round.
            self._handle.flush()
            os.fsync(self._handle.fileno())
