"""Differential replay: does a test case still manifest its defect?

Replaying a candidate test case against a defect-injected engine *and* a
clean engine of the same dialect answers two questions:

* **reduction** — the failure manifests iff the two engines disagree on
  the final statement's outcome (rows / error / crash), so the reducer
  can delete statements while preserving the defect's manifestation;
* **attribution** — replaying against engines with exactly one defect
  enabled identifies which injected defect(s) a finding exposes,
  providing the ground truth the paper got from upstream developers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.reports import TestCase
from repro.errors import DBCrash, DBError
from repro.interp import get_semantics
from repro.minidb.bugs import BugRegistry
from repro.minidb.engine import Engine


@dataclass(frozen=True)
class StatementOutcome:
    """Comparable outcome of one statement execution."""

    kind: str                       # 'rows' | 'error' | 'crash'
    payload: tuple = ()
    message: str = ""


class DifferentialReplayer:
    """Replays test cases against buggy and clean MiniDB engines."""

    def __init__(self, dialect: str, bugs: BugRegistry):
        self.dialect = dialect
        self.bugs = bugs
        self.semantics = get_semantics(dialect)

    # -- predicates -----------------------------------------------------------
    def manifests(self, test_case: TestCase) -> bool:
        """True when buggy and clean engines disagree on the final
        statement (the reducer's failure predicate)."""
        buggy = self._outcome(BugRegistry(set(self.bugs.enabled)),
                              test_case)
        clean = self._outcome(BugRegistry(), test_case)
        return not self._equivalent(buggy, clean)

    def difference_kind(self, test_case: TestCase) -> Optional[str]:
        """How buggy and clean engines disagree on the final statement:
        'crash' | 'error' | 'rows', or None when they agree.

        Delta debugging minimizes "some disagreement", so a case that
        originally *errored* can reduce to one that merely returns wrong
        rows; the reduced artifact's oracle classification must be
        re-derived from the reduced case itself.
        """
        buggy = self._outcome(BugRegistry(set(self.bugs.enabled)),
                              test_case)
        clean = self._outcome(BugRegistry(), test_case)
        if self._equivalent(buggy, clean):
            return None
        if buggy.kind == "crash":
            return "crash"
        if buggy.kind == "error":
            return "error"
        return "rows"

    def attribute(self, test_case: TestCase,
                  candidates: Optional[list[str]] = None) -> list[str]:
        """Injected defects that individually reproduce this test case."""
        clean = self._outcome(BugRegistry(), test_case)
        attributed = []
        for bug_id in (candidates if candidates is not None
                       else sorted(self.bugs.enabled)):
            single = self._outcome(BugRegistry({bug_id}), test_case)
            if not self._equivalent(single, clean):
                attributed.append(bug_id)
        return attributed

    # -- execution -----------------------------------------------------------
    def _outcome(self, bugs: BugRegistry,
                 test_case: TestCase) -> StatementOutcome:
        engine = Engine(self.dialect, bugs=bugs)
        final = test_case.statements[-1]
        for sql in test_case.statements[:-1]:
            try:
                engine.execute(sql)
            except DBCrash as crash:
                return StatementOutcome("crash", message=crash.message)
            except DBError:
                continue  # prefix statements may legitimately fail
        try:
            result = engine.execute(final)
        except DBCrash as crash:
            return StatementOutcome("crash", message=crash.message)
        except DBError as error:
            return StatementOutcome("error", message=error.message)
        return StatementOutcome(
            "rows", payload=tuple(sorted(map(repr, result.rows))))

    def _equivalent(self, a: StatementOutcome,
                    b: StatementOutcome) -> bool:
        if a.kind != b.kind:
            return False
        if a.kind == "rows":
            return a.payload == b.payload
        return a.message == b.message
