"""Worker supervision: bounded restarts, backoff, heartbeat stalls.

The supervisor turns a pool of round executors into a self-healing
fleet.  It owns the worker threads, watches them, and reacts to the two
ways a worker stops contributing:

* **death** — the worker thread terminated with an exception (a real
  harness bug, or an injected :class:`~repro.campaigns.chaos.ChaosKill`).
  Its leased rounds are released back to the queue immediately (work
  stealing: nothing is lost), the full traceback is captured for the
  campaign result, and — under a per-slot restart budget with
  *deterministic* exponential backoff (``backoff * 2**restarts``,
  capped) — a fresh executor is spawned in its place;
* **stall** — the worker is alive but its heartbeat (updated by the
  executor once per round) has gone stale past ``stall_timeout``.  Its
  leases are stolen so other workers finish the rounds; if it later
  completes anyway, :meth:`RoundQueue.complete` drops the duplicate.

If every slot exhausts its budget while rounds remain, the supervisor
aborts the queue rather than hanging — the campaign then degrades
gracefully (partial results + captured errors) or, with nothing
completed at all, surfaces the first worker's real exception.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.campaigns.scheduler import RoundQueue
from repro.observe.events import NULL_EVENTS
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry import names as metric_names


@dataclass
class SupervisorConfig:
    #: Restarts allowed per worker slot before it is retired.
    max_worker_restarts: int = 2
    #: Base of the deterministic exponential backoff slept before a
    #: restart: ``restart_backoff * 2**restarts_so_far`` seconds.
    restart_backoff: float = 0.05
    backoff_cap: float = 2.0
    #: Heartbeat staleness (seconds) after which an alive worker's
    #: leases are stolen; 0 disables stall detection.
    stall_timeout: float = 0.0
    poll_interval: float = 0.01


@dataclass
class WorkerFailure:
    """One worker death, with full diagnostics (not just the summary —
    losing the traceback made fleet failures undebuggable)."""

    slot: int
    summary: str
    traceback: str
    exception: BaseException


@dataclass
class SupervisionReport:
    """What supervision did over one campaign."""

    restarts: int = 0
    stalls: int = 0
    backoff_seconds: float = 0.0
    failures: list[WorkerFailure] = field(default_factory=list)
    #: Every executor ever spawned (initial + restarts), for snapshot
    #: and coverage collection.
    executors: list = field(default_factory=list)
    #: worker_id -> logical slot index, for every incarnation ever
    #: spawned (restarts get fresh ids; this maps them home).
    worker_slots: dict = field(default_factory=dict)
    aborted: bool = False


class _Slot:
    """One logical worker position and its current incarnation."""

    def __init__(self, index: int):
        self.index = index
        self.worker_id: int = index
        self.thread: Optional[threading.Thread] = None
        self.restarts = 0
        self.retired = False
        self.dead_handled = True


class Supervisor:
    """Runs ``slots`` workers over a shared queue until it settles."""

    def __init__(self, queue: RoundQueue, slots: int,
                 worker_factory: Callable[[int, dict], object],
                 config: Optional[SupervisorConfig] = None,
                 telemetry: Optional[Telemetry] = None,
                 events=None):
        self.queue = queue
        self.config = config or SupervisorConfig()
        #: worker_factory(worker_id, heartbeats) -> RoundExecutor.
        self.worker_factory = worker_factory
        self.telemetry = telemetry or NULL_TELEMETRY
        self.events = events if events is not None else NULL_EVENTS
        self.heartbeats: dict[int, float] = {}
        self._slots = [_Slot(i) for i in range(slots)]
        self._next_worker_id = slots
        self._lock = threading.Lock()
        #: Worker ids whose run_loop returned normally (drained queue),
        #: keyed per incarnation — a zombie's late clean exit must not
        #: mask its replacement's death.
        self._clean_exits: set[int] = set()
        self.report = SupervisionReport()
        self._m_restarts = self.telemetry.counter(
            metric_names.SUPERVISOR_RESTARTS)
        self._m_stalls = self.telemetry.counter(
            metric_names.SUPERVISOR_STALLS)
        self._m_backoff = self.telemetry.counter(
            metric_names.SUPERVISOR_BACKOFF_SECONDS)
        self._m_requeued = self.telemetry.counter(
            metric_names.SUPERVISOR_REQUEUED)

    # -- public -------------------------------------------------------------
    def run(self) -> SupervisionReport:
        for slot in self._slots:
            self._spawn(slot, slot.index)
        try:
            while not self.queue.settled:
                self._poll()
                if self._everyone_retired():
                    self.report.aborted = True
                    self.queue.abort()
                    break
                time.sleep(self.config.poll_interval)
        finally:
            if not self.queue.settled:
                self.queue.abort()
            self._join_all()
        return self.report

    # -- monitoring ---------------------------------------------------------
    def _poll(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if slot.retired or slot.thread is None:
                continue
            if slot.thread.is_alive():
                self._check_stall(slot, now)
                continue
            if slot.dead_handled:
                continue
            slot.dead_handled = True
            with self._lock:
                clean = slot.worker_id in self._clean_exits
            if clean:
                continue
            self._handle_death(slot)

    def _handle_death(self, slot: _Slot) -> None:
        requeued = self.queue.release(slot.worker_id)
        self._m_requeued.inc(len(requeued))
        self._restart_or_retire(slot)

    def _check_stall(self, slot: _Slot, now: float) -> None:
        timeout = self.config.stall_timeout
        if timeout <= 0:
            return
        beat = self.heartbeats.get(slot.worker_id)
        if beat is None or now - beat < timeout:
            return
        # Steal the stuck incarnation's leases and bar it from new
        # work; its in-flight round, should it ever finish, is dropped
        # as a duplicate by the queue.
        stolen = self.queue.release(slot.worker_id)
        self.queue.retire_worker(slot.worker_id)
        self.report.stalls += 1
        self._m_stalls.inc()
        self._m_requeued.inc(len(stolen))
        self.events.emit("worker_stalled", worker=slot.worker_id,
                         slot=slot.index, stolen_rounds=stolen)
        self._restart_or_retire(slot)

    def _restart_or_retire(self, slot: _Slot) -> None:
        if slot.restarts >= self.config.max_worker_restarts:
            slot.retired = True
            self.events.emit("worker_retired", worker=slot.worker_id,
                             slot=slot.index, restarts=slot.restarts)
            return
        backoff = min(self.config.backoff_cap,
                      self.config.restart_backoff * 2 ** slot.restarts)
        slot.restarts += 1
        self.report.restarts += 1
        self._m_restarts.inc()
        if backoff > 0:
            self.report.backoff_seconds += backoff
            self._m_backoff.inc(backoff)
            time.sleep(backoff)
        with self._lock:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        self.events.emit("worker_restart", worker=worker_id,
                         slot=slot.index, attempt=slot.restarts,
                         backoff_seconds=round(backoff, 4))
        self._spawn(slot, worker_id)

    # -- lifecycle ----------------------------------------------------------
    def _spawn(self, slot: _Slot, worker_id: int) -> None:
        executor = self.worker_factory(worker_id, self.heartbeats)
        self.report.executors.append(executor)
        self.report.worker_slots[worker_id] = slot.index
        slot.worker_id = worker_id
        slot.dead_handled = False
        self.heartbeats[worker_id] = time.monotonic()
        self.events.emit("worker_start", worker=worker_id,
                         slot=slot.index)
        thread = threading.Thread(
            target=self._worker_main, args=(slot, executor),
            name=f"pqs-worker-{slot.index}.{worker_id}", daemon=True)
        slot.thread = thread
        thread.start()

    def _worker_main(self, slot: _Slot, executor) -> None:
        try:
            executor.run_loop()
            with self._lock:
                self._clean_exits.add(executor.worker_id)
        except BaseException as exc:  # noqa: BLE001 - full capture is the point
            failure = WorkerFailure(
                slot=slot.index,
                summary=f"{type(exc).__name__}: {exc}",
                traceback="".join(traceback.format_exception(
                    type(exc), exc, exc.__traceback__)),
                exception=exc)
            with self._lock:
                self.report.failures.append(failure)
            self.events.emit("worker_death", worker=executor.worker_id,
                             slot=slot.index,
                             error=type(exc).__name__,
                             message=str(exc))

    def _everyone_retired(self) -> bool:
        # A retired slot counts even if its stuck zombie thread is
        # still alive — it is barred from leasing, so it cannot make
        # progress on the queue's behalf.
        return all(slot.retired for slot in self._slots)

    def _join_all(self) -> None:
        # Workers exit as soon as lease() returns None (settled or
        # aborted); a genuinely stuck stalled thread is left behind as
        # a daemon rather than hanging the campaign.
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=5.0)
        # A death in the final instants still releases its leases.
        for slot in self._slots:
            if not slot.dead_handled and slot.thread is not None \
                    and not slot.thread.is_alive():
                slot.dead_handled = True
                self.queue.release(slot.worker_id)
