"""Parallel campaigns — paper §3.4's performance recipe, supervised.

"We parallelized the system by running each thread on a distinct
database."  Each worker thread owns its own engines, runner and random
stream, so there is no shared mutable state on the hot path; results are
merged and re-triaged globally, the same way the benchmark harness
merges seed chunks.

Scheduling is a shared work queue of round indexes
(:class:`~repro.campaigns.scheduler.RoundQueue`), not a static
per-thread shard split: every round's seed derives from the *campaign*
seed and the round index, so any worker can run any round and produce
the same result.  A :class:`~repro.campaigns.supervisor.Supervisor`
watches the fleet — a dead worker's leased rounds are requeued for the
survivors and the worker is restarted under a bounded budget with
deterministic backoff; a round that keeps failing is quarantined instead
of aborting the hunt.  The optional
:class:`~repro.campaigns.chaos.ChaosPolicy` injects exactly those faults
so the acceptance tests can assert the merged results are bit-identical
to an undisturbed run.

Python threads do not overlap CPU-bound work (the GIL), so against the
pure-Python MiniDB this is about workload *shape*, not speedup; against
an out-of-process DBMS adapter the same structure pipelines naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.campaigns.campaign import (
    Campaign,
    CampaignConfig,
    primary_attribution,
    record_recovery,
    stats_from_records,
)
from repro.campaigns.chaos import NULL_CHAOS
from repro.campaigns.executor import RoundExecutor
from repro.campaigns.journal import (
    CampaignJournal,
    JournalState,
    QuarantineRecord,
    RecoveryStats,
)
from repro.campaigns.scheduler import RoundQueue
from repro.campaigns.supervisor import (
    SupervisionReport,
    Supervisor,
    SupervisorConfig,
)
from repro.core.reports import BugReport, RunStatistics
from repro.guidance import PlanCoverage
from repro.observe.observatory import NULL_OBSERVATORY
from repro.plantime.archive import TimingArchive
from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry import names as metric_names


@dataclass
class ParallelCampaignConfig:
    dialect: str = "sqlite"
    seed: int = 0
    threads: int = 4
    databases_per_thread: int = 50
    bug_ids: Optional[list[str]] = None
    reduce: bool = True
    max_reports_per_bug: int = 2
    #: JSONL journal path.  One *shared* journal for the whole fleet
    #: (the journal is internally locked): any worker's completed round
    #: is durable immediately, and a resume redistributes the remaining
    #: rounds over however many threads the resuming run has.
    journal: Optional[str] = None
    resume: bool = False
    #: Observability sink for the merged campaign.  Each worker hunts
    #: with a *private* registry (zero cross-thread contention on the
    #: hot path, same recipe as the seed-forking: no shared mutable
    #: state); after the join every per-worker snapshot is merged into
    #: this telemetry's registry and kept in
    #: :attr:`ParallelCampaignResult.worker_snapshots`.  Supervisor
    #: counters (restarts, stalls, backoff) land in the shared registry
    #: directly — supervision runs on the parent thread.
    telemetry: Optional[Telemetry] = None
    #: Plan-coverage guidance: each worker runs its own scheduler (same
    #: no-shared-state recipe as seeds and telemetry).  Feedback under
    #: work stealing is best-effort per worker — which rounds a worker
    #: sees depends on scheduling — but *passive* coverage tracking is
    #: deterministic: the merged set is rebuilt from the per-round
    #: records in round-index order.
    guidance: bool = False
    #: Write the merged plan-coverage set (PlanCoverage JSON) here.
    plan_coverage: Optional[str] = None
    #: Multi-plan differential oracle (repro.multiplan); each worker's
    #: runner gets its own oracle instance (no shared mutable state).
    multiplan: bool = False
    #: Optimizer observatory (repro.plantime); each worker times its own
    #: rounds, and the merged archive is rebuilt from the per-round
    #: records in round-index order (schedule-independent min-merge).
    plan_timing: bool = False
    timing_repeats: int = 3
    regression_ratio: float = 1.5
    #: Write the merged TimingArchive (JSONL) here.
    timing_archive: Optional[str] = None
    #: Statements per pipe round-trip for batchable work (see
    #: :attr:`repro.core.runner.RunnerConfig.batch_size`).
    batch_size: int = 16
    #: Supervision knobs (see repro.campaigns.supervisor).
    max_worker_restarts: int = 2
    restart_backoff: float = 0.05
    backoff_cap: float = 2.0
    stall_timeout: float = 0.0
    #: Failed attempts before a round is quarantined instead of requeued.
    quarantine_threshold: int = 3
    #: Fault-injection schedule (repro.campaigns.chaos.ChaosPolicy);
    #: None runs undisturbed.
    chaos: Optional[object] = None
    #: Observability hub (repro.observe.Observatory).  Read-side only:
    #: the fleet attaches its queue, heartbeat map, and supervision
    #: report so the status service sees exact live counts (per-worker
    #: registries are private until the join, so the shared registry
    #: cannot serve live progress in parallel mode — the queue can).
    observe: Optional[object] = None


@dataclass
class ParallelCampaignResult:
    config: ParallelCampaignConfig
    stats: RunStatistics
    reports: list[BugReport] = field(default_factory=list)
    #: Rounds completed per logical worker slot (restarted incarnations
    #: count toward their slot; journal-preloaded rounds toward none).
    per_thread_rounds: list[int] = field(default_factory=list)
    #: One entry per worker death: the summary line followed by the
    #: full formatted traceback — a fleet failure must be debuggable
    #: from the campaign result alone.
    worker_errors: list[str] = field(default_factory=list)
    #: Per-worker metric snapshots (one per spawned incarnation),
    #: merged into the shared registry; kept so per-worker skew is
    #: inspectable.
    worker_snapshots: list[dict] = field(default_factory=list)
    #: Union of the per-round plan sets, rebuilt in round-index order
    #: (None when plan tracking was off); per-slot distinct counts are
    #: in :attr:`per_thread_plans`.
    plan_coverage: Optional["PlanCoverage"] = None
    per_thread_plans: list[int] = field(default_factory=list)
    #: Merged per-plan timing archive (None when plan timing was off),
    #: min-merged from the per-round records in round-index order.
    timing_archive: Optional["TimingArchive"] = None
    #: Poison rounds retired after exhausting the retry threshold.
    quarantined: list[QuarantineRecord] = field(default_factory=list)
    #: What journal recovery had to repair on ``--resume``.
    recovery: RecoveryStats = field(default_factory=RecoveryStats)
    #: What supervision did (restarts, stalls, backoff, failures).
    supervision: SupervisionReport = field(
        default_factory=SupervisionReport)

    def harness_reports(self) -> list[str]:
        """Synthesized human-readable reports for quarantined rounds —
        availability failures of the harness, never DBMS findings."""
        return [record.harness_report() for record in self.quarantined]

    @property
    def detected_bug_ids(self) -> set[str]:
        out: set[str] = set()
        for report in self.reports:
            out.update(report.attributed_bugs)
        return out


class ParallelCampaign:
    """A supervised worker fleet over one shared round queue."""

    def __init__(self, config: ParallelCampaignConfig):
        self.config = config
        self.total_rounds = config.threads * config.databases_per_thread
        # The parent campaign supplies the runner recipe (engines,
        # guidance wiring) for every worker and the replay/reduce/triage
        # pipeline for the merged reports.
        self._parent = Campaign(self._base_config())

    def _base_config(self) -> CampaignConfig:
        cfg = self.config
        return CampaignConfig(
            dialect=cfg.dialect, seed=cfg.seed,
            databases=self.total_rounds, bug_ids=cfg.bug_ids,
            reduce=cfg.reduce,
            max_reports_per_bug=cfg.max_reports_per_bug,
            journal=cfg.journal, resume=cfg.resume,
            telemetry=cfg.telemetry, guidance=cfg.guidance,
            track_plans=cfg.guidance or bool(cfg.plan_coverage),
            quarantine_threshold=cfg.quarantine_threshold,
            multiplan=cfg.multiplan,
            plan_timing=cfg.plan_timing,
            timing_repeats=cfg.timing_repeats,
            regression_ratio=cfg.regression_ratio,
            batch_size=cfg.batch_size)

    def run(self) -> ParallelCampaignResult:
        cfg = self.config
        shared = cfg.telemetry
        chaos = cfg.chaos or NULL_CHAOS
        observe = cfg.observe or NULL_OBSERVATORY
        queue = RoundQueue(range(self.total_rounds), cfg.seed,
                           quarantine_threshold=cfg.quarantine_threshold)
        observe.attach_queue(queue)
        spawned_telemetry: list[Optional[Telemetry]] = []

        journal: Optional[CampaignJournal] = None
        state = JournalState()
        try:
            if cfg.journal:
                journal = CampaignJournal(cfg.journal)
                fingerprint = self._parent._fingerprint()
                if cfg.resume:
                    state = journal.load_state(fingerprint)
                journal.start(fingerprint, fresh=state.empty)
                queue.preload(state.rounds, state.quarantined)
                record_recovery(state.recovery, shared,
                                recovered=len(state.rounds))
                if shared is not None:
                    shared.counter(metric_names.ROUNDS).inc(
                        len(state.rounds))

            def worker_factory(worker_id: int,
                               heartbeats: dict) -> RoundExecutor:
                child_telemetry = None
                if shared is not None and shared.enabled:
                    # Private registry per worker; the shared tracer is
                    # lock-protected, so spans interleave but each line
                    # stays whole.
                    child_telemetry = Telemetry(
                        registry=MetricsRegistry(), tracer=shared.tracer)
                spawned_telemetry.append(child_telemetry)
                runner = self._parent.build_runner(
                    telemetry=child_telemetry,
                    # Distinct guidance streams per incarnation.
                    seed=cfg.seed + 7919 * (worker_id + 1))
                return RoundExecutor(
                    worker_id, runner, queue, cfg.seed,
                    journal=journal, chaos=chaos,
                    telemetry=child_telemetry, heartbeats=heartbeats,
                    events=observe.events)

            supervisor = Supervisor(
                queue, cfg.threads, worker_factory,
                config=SupervisorConfig(
                    max_worker_restarts=cfg.max_worker_restarts,
                    restart_backoff=cfg.restart_backoff,
                    backoff_cap=cfg.backoff_cap,
                    stall_timeout=cfg.stall_timeout),
                telemetry=shared, events=observe.events)
            observe.attach_heartbeats(supervisor.heartbeats)
            observe.attach_supervision(supervisor.report)
            supervision = supervisor.run()
        finally:
            if journal is not None:
                journal.close()

        if not queue.completed and supervision.failures:
            # Nothing survived; there is nothing to degrade to.
            raise supervision.failures[0].exception

        merged = self._merge(queue, supervision, state)
        merged.worker_snapshots = [
            t.registry.snapshot() for t in spawned_telemetry
            if t is not None]
        if shared is not None:
            for snapshot in merged.worker_snapshots:
                shared.registry.merge_snapshot(snapshot)
        if merged.plan_coverage is not None:
            observe.attach_coverage(merged.plan_coverage)
        observe.mark_finished()
        return merged

    # -- merging (parent thread, round-index order) --------------------------
    def _merge(self, queue: RoundQueue, supervision: SupervisionReport,
               state: JournalState) -> ParallelCampaignResult:
        records = queue.records_in_order()
        quarantined = queue.quarantined_in_order()
        stats = stats_from_records(records, quarantined)
        merged = ParallelCampaignResult(
            config=self.config, stats=stats, quarantined=quarantined,
            recovery=state.recovery, supervision=supervision)
        merged.worker_errors = [
            f"worker slot {failure.slot}: {failure.summary}\n"
            f"{failure.traceback}"
            for failure in supervision.failures]

        # Rounds and plans attributed to logical slots.  completed_by
        # holds the completing incarnation's worker_id (None for
        # journal-preloaded rounds); worker_slots maps it home.
        rounds_per_slot = [0] * self.config.threads
        track_plans = self.config.guidance \
            or bool(self.config.plan_coverage)
        coverage = PlanCoverage() if track_plans else None
        per_slot_coverage = [PlanCoverage()
                             for _ in range(self.config.threads)]
        for record in records:
            worker_id = queue.completed_by.get(record.index)
            slot = supervision.worker_slots.get(worker_id) \
                if worker_id is not None else None
            if slot is not None:
                rounds_per_slot[slot] += 1
            if coverage is None:
                continue
            # Index-order rebuild: the globally-earliest round holding
            # a fingerprint always recorded it (no worker saw it
            # before), so the merged set — including which example
            # query witnesses each plan — is schedule-independent.
            for fingerprint, example in record.plans:
                coverage.observe(fingerprint, example)
                if slot is not None:
                    per_slot_coverage[slot].observe(fingerprint, example)
        merged.per_thread_rounds = rounds_per_slot
        if self.config.plan_timing:
            # stats.plantime_outcomes was filled from records_in_order,
            # and the archive's min-merge is order-insensitive anyway,
            # so the merged archive is schedule-independent and matches
            # what a single-process run of the same rounds produces.
            merged.timing_archive = TimingArchive.from_outcomes(
                stats.plantime_outcomes)
            if self.config.timing_archive:
                merged.timing_archive.dump(self.config.timing_archive)
        if coverage is not None:
            merged.plan_coverage = coverage
            merged.per_thread_plans = [c.distinct
                                       for c in per_slot_coverage]
            if self.config.plan_coverage:
                coverage.dump(self.config.plan_coverage)

        # Reduce, attribute, and triage centrally, in round-index order
        # (stats.reports was filled from records_in_order), so the
        # outcome is independent of worker scheduling.
        per_bug: dict[str, int] = {}
        seen: set[str] = set()
        for report in stats.reports:
            processed = self._parent._process(report)
            if processed is None:
                continue
            primary = primary_attribution(processed)
            if per_bug.get(primary, 0) >= \
                    self.config.max_reports_per_bug:
                continue
            per_bug[primary] = per_bug.get(primary, 0) + 1
            processed.triage = self._parent._triage(primary, seen)
            seen.add(primary)
            merged.reports.append(processed)
        # stats.reports held the raw per-round reports; keep only the
        # merged, re-triaged ones visible.
        stats.reports = list(merged.reports)
        return merged
