"""Parallel campaigns — paper §3.4's performance recipe.

"We parallelized the system by running each thread on a distinct
database."  Each worker thread owns its own engines, runner and random
stream (a forked seed), so there is no shared mutable state; results are
merged and re-triaged globally, the same way the benchmark harness
merges seed chunks.

Python threads do not overlap CPU-bound work (the GIL), so against the
pure-Python MiniDB this is about workload *shape*, not speedup; against
an out-of-process DBMS adapter the same structure pipelines naturally.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.campaigns.campaign import Campaign, CampaignConfig, CampaignResult
from repro.core.reports import BugReport, RunStatistics
from repro.guidance import PlanCoverage
from repro.minidb.bugs import BUG_CATALOG
from repro.telemetry import MetricsRegistry, Telemetry


@dataclass
class ParallelCampaignConfig:
    dialect: str = "sqlite"
    seed: int = 0
    threads: int = 4
    databases_per_thread: int = 50
    bug_ids: Optional[list[str]] = None
    reduce: bool = True
    max_reports_per_bug: int = 2
    #: Journal path stem; worker *i* journals to ``{journal}.worker{i}``
    #: so an interrupted parallel hunt resumes per worker.
    journal: Optional[str] = None
    resume: bool = False
    #: Observability sink for the merged campaign.  Each worker hunts
    #: with a *private* registry (zero cross-thread contention on the
    #: hot path, same recipe as the seed-forking: no shared mutable
    #: state); after the join every per-worker snapshot is merged into
    #: this telemetry's registry and kept in
    #: :attr:`ParallelCampaignResult.worker_snapshots`.
    telemetry: Optional[Telemetry] = None
    #: Plan-coverage guidance: each worker runs its own scheduler (same
    #: no-shared-state recipe as seeds and telemetry); the per-worker
    #: coverage sets are merged after the join.
    guidance: bool = False
    #: Write the merged plan-coverage set (PlanCoverage JSON) here.
    plan_coverage: Optional[str] = None


@dataclass
class ParallelCampaignResult:
    config: ParallelCampaignConfig
    stats: RunStatistics
    reports: list[BugReport] = field(default_factory=list)
    per_thread_reports: list[int] = field(default_factory=list)
    #: Human-readable summaries of workers that died; completed workers'
    #: results are kept regardless (graceful degradation).
    worker_errors: list[str] = field(default_factory=list)
    #: Per-worker metric snapshots (one per completed worker), merged
    #: into the shared registry; kept so per-worker skew is inspectable.
    worker_snapshots: list[dict] = field(default_factory=list)
    #: Union of the workers' plan-coverage sets (None when plan
    #: tracking was off); per-worker distinct counts are in
    #: :attr:`per_thread_plans`.
    plan_coverage: Optional["PlanCoverage"] = None
    per_thread_plans: list[int] = field(default_factory=list)

    @property
    def detected_bug_ids(self) -> set[str]:
        out: set[str] = set()
        for report in self.reports:
            out.update(report.attributed_bugs)
        return out


class ParallelCampaign:
    """Runs one campaign per thread and merges the findings."""

    def __init__(self, config: ParallelCampaignConfig):
        self.config = config

    def run(self) -> ParallelCampaignResult:
        results: list[Optional[CampaignResult]] = \
            [None] * self.config.threads
        errors: list[Optional[BaseException]] = \
            [None] * self.config.threads
        shared = self.config.telemetry
        snapshots: list[Optional[dict]] = [None] * self.config.threads

        def worker(index: int) -> None:
            try:
                child_telemetry = None
                if shared is not None and shared.enabled:
                    # Private registry per worker; the shared tracer is
                    # lock-protected, so spans interleave but each line
                    # stays whole.
                    child_telemetry = Telemetry(
                        registry=MetricsRegistry(), tracer=shared.tracer)
                child = CampaignConfig(
                    dialect=self.config.dialect,
                    # Distinct seeds per thread: distinct databases.
                    seed=self.config.seed + 7919 * (index + 1),
                    databases=self.config.databases_per_thread,
                    bug_ids=self.config.bug_ids,
                    reduce=self.config.reduce,
                    max_reports_per_bug=self.config.max_reports_per_bug,
                    journal=(f"{self.config.journal}.worker{index}"
                             if self.config.journal else None),
                    resume=self.config.resume,
                    telemetry=child_telemetry,
                    guidance=self.config.guidance,
                    track_plans=bool(self.config.plan_coverage))
                results[index] = Campaign(child).run()
                if child_telemetry is not None:
                    snapshots[index] = \
                        child_telemetry.registry.snapshot()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors[index] = exc

        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"pqs-worker-{i}")
                   for i in range(self.config.threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        completed = [r for r in results if r is not None]
        failed = [(i, e) for i, e in enumerate(errors) if e is not None]
        if not completed and failed:
            # Nothing survived; there is nothing to degrade to.
            raise failed[0][1]
        merged = self._merge(completed)
        merged.worker_errors = [
            f"worker {i}: {type(exc).__name__}: {exc}"
            for i, exc in failed]
        merged.worker_snapshots = [s for s in snapshots if s is not None]
        if shared is not None:
            for snapshot in merged.worker_snapshots:
                shared.registry.merge_snapshot(snapshot)
        if any(r.plan_coverage is not None for r in completed):
            coverage = PlanCoverage()
            for result in completed:
                if result.plan_coverage is not None:
                    merged.per_thread_plans.append(
                        result.plan_coverage.distinct)
                    coverage.merge(result.plan_coverage)
            merged.plan_coverage = coverage
            if self.config.plan_coverage:
                coverage.dump(self.config.plan_coverage)
        return merged

    def _merge(self, results: list[CampaignResult],
               ) -> ParallelCampaignResult:
        stats = RunStatistics()
        merged = ParallelCampaignResult(config=self.config, stats=stats)
        per_bug: dict[str, int] = {}
        seen: set[str] = set()
        for result in results:
            stats.merge(result.stats)
            merged.per_thread_reports.append(len(result.reports))
            for report in result.reports:
                primary = report.attributed_bugs[0]
                if per_bug.get(primary, 0) >= \
                        self.config.max_reports_per_bug:
                    continue
                per_bug[primary] = per_bug.get(primary, 0) + 1
                if primary in seen:
                    report.triage = "duplicate"
                else:
                    report.triage = BUG_CATALOG[primary].triage
                    seen.add(primary)
                merged.reports.append(report)
        # merge() already accumulated the raw per-thread reports into
        # stats.reports; keep only the merged, re-triaged ones visible.
        stats.reports = list(merged.reports)
        return merged
