"""Campaign orchestration: long PQS runs with ground-truth scoring.

The paper's evaluation ran SQLancer for months against live DBMS and
counted developer-confirmed bugs.  Offline, a *campaign* runs PQS
against a MiniDB engine with that dialect's injected defects enabled,
reduces every finding, attributes it to specific defects by differential
replay against single-defect engines, and aggregates the statistics that
regenerate the paper's Tables 2–3 and Figures 2–3.
"""

from repro.campaigns.campaign import Campaign, CampaignConfig, CampaignResult
from repro.campaigns.journal import CampaignJournal, RoundRecord, round_seed
from repro.campaigns.parallel import (
    ParallelCampaign,
    ParallelCampaignConfig,
    ParallelCampaignResult,
)
from repro.campaigns.replay import DifferentialReplayer
from repro.campaigns.metrics import (
    constraint_statistics,
    statement_distribution,
    testcase_loc_cdf,
)

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignJournal",
    "CampaignResult",
    "DifferentialReplayer",
    "ParallelCampaign",
    "ParallelCampaignConfig",
    "ParallelCampaignResult",
    "RoundRecord",
    "constraint_statistics",
    "round_seed",
    "statement_distribution",
    "testcase_loc_cdf",
]
