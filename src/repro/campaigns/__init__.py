"""Campaign orchestration: long PQS runs with ground-truth scoring.

The paper's evaluation ran SQLancer for months against live DBMS and
counted developer-confirmed bugs.  Offline, a *campaign* runs PQS
against a MiniDB engine with that dialect's injected defects enabled,
reduces every finding, attributes it to specific defects by differential
replay against single-defect engines, and aggregates the statistics that
regenerate the paper's Tables 2–3 and Figures 2–3.

Long campaigns are *supervised*: rounds flow through a work-stealing
queue (repro.campaigns.scheduler), workers are restarted under a budget
and stalled ones detected (repro.campaigns.supervisor), poison rounds
are quarantined instead of aborting, the journal is checksummed and
self-healing (repro.campaigns.journal), and the whole stack is
exercised by a deterministic fault injector (repro.campaigns.chaos).
"""

from repro.campaigns.campaign import Campaign, CampaignConfig, CampaignResult
from repro.campaigns.chaos import ChaosEvents, ChaosKill, ChaosPolicy, NULL_CHAOS
from repro.campaigns.executor import RoundExecutor
from repro.campaigns.journal import (
    CampaignJournal,
    JournalState,
    QuarantineRecord,
    RecoveryStats,
    RoundRecord,
    round_seed,
)
from repro.campaigns.parallel import (
    ParallelCampaign,
    ParallelCampaignConfig,
    ParallelCampaignResult,
)
from repro.campaigns.replay import DifferentialReplayer
from repro.campaigns.scheduler import RoundQueue
from repro.campaigns.supervisor import (
    SupervisionReport,
    Supervisor,
    SupervisorConfig,
    WorkerFailure,
)
from repro.campaigns.metrics import (
    constraint_statistics,
    statement_distribution,
    testcase_loc_cdf,
)

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignJournal",
    "CampaignResult",
    "ChaosEvents",
    "ChaosKill",
    "ChaosPolicy",
    "DifferentialReplayer",
    "JournalState",
    "NULL_CHAOS",
    "ParallelCampaign",
    "ParallelCampaignConfig",
    "ParallelCampaignResult",
    "QuarantineRecord",
    "RecoveryStats",
    "RoundExecutor",
    "RoundQueue",
    "RoundRecord",
    "SupervisionReport",
    "Supervisor",
    "SupervisorConfig",
    "WorkerFailure",
    "constraint_statistics",
    "round_seed",
    "statement_distribution",
    "testcase_loc_cdf",
]
