"""End-to-end bug-hunting campaigns with ground-truth scoring.

A campaign mirrors the paper's §4.1 methodology, compressed: run PQS
against a target with known (injected) defects, report findings, reduce
each finding's test case, and triage.  Where the paper's triage came
from upstream developers, ours comes from differential replay against
single-defect engines plus the defect catalog's recorded upstream
resolution (fixed / verified / docs / intended / duplicate).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.campaigns.executor import RoundExecutor
from repro.campaigns.journal import (
    CampaignJournal,
    JournalState,
    QuarantineRecord,
    RecoveryStats,
)
from repro.campaigns.replay import DifferentialReplayer
from repro.campaigns.scheduler import RoundQueue
from repro.core.reducer import TestCaseReducer
from repro.core.reports import BugReport, Oracle, RunStatistics
from repro.core.runner import PQSRunner, RunnerConfig
from repro.errors import ReductionError
from repro.guidance import NULL_GUIDANCE, PlanCoverage, PlanGuidance
from repro.minidb.bugs import BUG_CATALOG, BugRegistry, bugs_for_dialect
from repro.multiplan.hints import BASELINE, PlannerHints
from repro.multiplan.replay import MultiPlanReplayer
from repro.observe.observatory import NULL_OBSERVATORY, Observatory
from repro.plantime.archive import TimingArchive
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry import names as metric_names

#: BugReport oracle value -> catalog oracle tag.
_ORACLE_TAG = {"contains": "contains", "error": "error",
               "segfault": "crash", "multiplan": "multiplan"}


def primary_attribution(report: BugReport) -> str:
    """The defect a report is charged to.

    A test case sometimes manifests under several single-defect engines
    (its statements trip more than one injection point); the report is
    charged to a defect whose *catalog oracle* matches the oracle that
    actually detected it, so e.g. an error-oracle finding is never
    credited to a containment defect that happens to co-manifest.
    """
    assert report.attributed_bugs
    tag = _ORACLE_TAG.get(report.oracle.value)
    for bug_id in report.attributed_bugs:
        if BUG_CATALOG[bug_id].oracle == tag:
            return bug_id
    return report.attributed_bugs[0]


def stats_from_records(records, quarantined=()) -> RunStatistics:
    """Fold per-round records (journal-loaded or freshly run, already in
    round-index order) into campaign statistics.  Shared by the
    single-process journaled path and the parallel fleet so both merge
    identically."""
    stats = RunStatistics()
    for record in records:
        stats.databases += 1
        stats.statements += record.statements
        stats.queries += record.queries
        stats.pivots += record.pivots
        stats.expected_errors += record.expected_errors
        stats.timeouts += record.timeouts
        stats.seconds += record.seconds
        stats.absorb_multiplan(getattr(record, "multiplan", {}))
        stats.absorb_plantime(getattr(record, "plantime", {}))
        stats.reports.extend(record.reports)
    stats.quarantined_rounds = len(quarantined)
    return stats


def record_recovery(recovery: RecoveryStats, telemetry: "Telemetry",
                    recovered: int = 0) -> None:
    """Surface journal-recovery outcomes as telemetry counters."""
    telemetry = telemetry or NULL_TELEMETRY
    if recovered:
        telemetry.counter(
            metric_names.JOURNAL_RECOVERED_ROUNDS).inc(recovered)
    if recovery.corrupt_lines:
        telemetry.counter(
            metric_names.JOURNAL_CORRUPT_LINES).inc(recovery.corrupt_lines)
    if recovery.duplicate_rounds:
        telemetry.counter(
            metric_names.JOURNAL_DUPLICATE_ROUNDS).inc(
                recovery.duplicate_rounds)


@dataclass
class CampaignConfig:
    dialect: str = "sqlite"
    seed: int = 0
    databases: int = 50
    #: Defects to enable; None enables the dialect's full catalog.
    bug_ids: Optional[list[str]] = None
    reduce: bool = True
    #: Stop re-reporting a defect after this many reports (the authors
    #: likewise stopped filing duplicates).
    max_reports_per_bug: int = 2
    #: JSONL journal path.  When set, each database round gets an
    #: independently-derived seed and its raw results are persisted as
    #: the campaign runs, so an interrupted hunt can be continued.
    journal: Optional[str] = None
    #: Continue from an existing journal instead of starting over.
    resume: bool = False
    #: Observability sink (metrics registry + tracer); None runs with
    #: the no-op :data:`repro.telemetry.NULL_TELEMETRY`.  Deliberately
    #: not part of the journal fingerprint: turning telemetry on must
    #: not invalidate a resumable hunt.
    telemetry: Optional["Telemetry"] = None
    #: Observability hub (repro.observe.Observatory): event log plus
    #: live status views.  Like telemetry — and unlike guidance — it is
    #: strictly read-side: never journal-fingerprinted, never feeds
    #: back into generation, so turning it on cannot perturb the
    #: statement stream or invalidate a resumable hunt.
    observe: Optional["Observatory"] = None
    #: Query-plan-coverage guidance (repro.guidance).  Unlike telemetry
    #: this *is* journal-fingerprinted when on: feedback changes what
    #: the campaign generates, so a guided journal cannot silently
    #: continue an unguided hunt (or vice versa).
    guidance: bool = False
    #: Write the final plan-coverage set (PlanCoverage JSON) here.
    #: Setting a path without ``guidance=True`` observes plans
    #: *passively*: coverage is tracked and dumped but generation is the
    #: exact unguided stream.
    plan_coverage: Optional[str] = None
    #: Track plan coverage without dumping it (parallel workers use
    #: this; the merged set is dumped by the parent).
    track_plans: bool = False
    #: Failed attempts before a journaled round is quarantined (a
    #: poison round — e.g. HarnessError on every try — is journaled and
    #: surfaced instead of aborting the hunt).
    quarantine_threshold: int = 3
    #: Multi-plan differential oracle (repro.multiplan).  Like guidance
    #: it is journal-fingerprinted when on — not because it perturbs the
    #: statement stream (it cannot: forced runs use the non-logged
    #: ``with_plan`` hook), but because its findings are journaled, so a
    #: multiplan journal must not silently continue a plain hunt.
    multiplan: bool = False
    #: Optimizer observatory (repro.plantime): time each distinct forced
    #: plan and flag planner regressions.  Requires ``multiplan``.
    #: Journal-fingerprinted when on — timing outcomes are journaled, so
    #: a timing journal must not silently continue (or be continued by)
    #: an untimed hunt.
    plan_timing: bool = False
    #: Timed re-executions per plan (min-of-k).
    timing_repeats: int = 3
    #: Planner-regression flagging ratio.
    regression_ratio: float = 1.5
    #: Write the final merged TimingArchive (JSONL) here.
    timing_archive: Optional[str] = None
    #: Statements per pipe round-trip for batchable work (see
    #: :attr:`repro.core.runner.RunnerConfig.batch_size`).
    batch_size: int = 16
    runner: RunnerConfig = field(default_factory=RunnerConfig)

    def __post_init__(self) -> None:
        self.runner.dialect = self.dialect
        self.runner.seed = self.seed
        self.runner.multiplan = self.multiplan
        self.runner.plan_timing = self.plan_timing
        self.runner.plan_timing_repeats = self.timing_repeats
        self.runner.plan_regression_ratio = self.regression_ratio
        self.runner.batch_size = self.batch_size


@dataclass
class CampaignResult:
    config: CampaignConfig
    stats: RunStatistics
    #: Final plan-coverage set when the campaign tracked plans
    #: (``guidance`` or ``plan_coverage`` configured); None otherwise.
    plan_coverage: Optional["PlanCoverage"] = None
    #: Reduced, attributed reports (unattributed findings excluded —
    #: they would be tool bugs, which the test suite asserts never
    #: happen).
    reports: list[BugReport] = field(default_factory=list)
    unattributed: list[BugReport] = field(default_factory=list)
    #: Merged per-plan timing archive when the campaign timed plans
    #: (``plan_timing``); None otherwise.
    timing_archive: Optional["TimingArchive"] = None
    #: Poison rounds retired after exhausting the retry threshold
    #: (journaled campaigns only).
    quarantined: list[QuarantineRecord] = field(default_factory=list)
    #: What journal recovery had to repair on ``--resume``.
    recovery: RecoveryStats = field(default_factory=RecoveryStats)

    def harness_reports(self) -> list[str]:
        """Synthesized human-readable reports for quarantined rounds —
        availability failures of the harness, never DBMS findings."""
        return [record.harness_report() for record in self.quarantined]

    @property
    def detected_bug_ids(self) -> set[str]:
        out: set[str] = set()
        for report in self.reports:
            out.update(report.attributed_bugs)
        return out

    def true_bugs(self) -> list[BugReport]:
        """Reports the paper would count as true bugs (code fixes,
        documentation fixes, confirmed)."""
        return [r for r in self.reports
                if r.triage in ("fixed", "docs", "verified")]

    def table2_row(self) -> dict[str, int]:
        """This dialect's row of the paper's Table 2."""
        row = {"fixed": 0, "verified": 0, "intended": 0, "duplicate": 0}
        for report in self.reports:
            key = "fixed" if report.triage == "docs" else report.triage
            row[key] = row.get(key, 0) + 1
        return row

    def table3_row(self) -> dict[str, int]:
        """This dialect's row of the paper's Table 3 (true bugs per
        detecting oracle)."""
        row = {"contains": 0, "error": 0, "segfault": 0, "multiplan": 0}
        for report in self.true_bugs():
            row[report.oracle.value] += 1
        return row


class Campaign:
    """Runs PQS against defect-injected MiniDB and scores the findings."""

    def __init__(self, config: CampaignConfig):
        self.config = config
        bug_ids = config.bug_ids
        if bug_ids is None:
            bug_ids = [b.bug_id for b in bugs_for_dialect(config.dialect)]
        self.bugs = BugRegistry(set(bug_ids))
        self.replayer = DifferentialReplayer(config.dialect, self.bugs)
        self.multiplan_replayer = MultiPlanReplayer(config.dialect,
                                                    self.bugs)

    def _connection(self) -> MiniDBConnection:
        return MiniDBConnection(self.config.dialect,
                                bugs=BugRegistry(set(self.bugs.enabled)))

    def build_runner(self, telemetry=None, seed: Optional[int] = None,
                     ) -> PQSRunner:
        """A fresh runner wired exactly as this campaign hunts: own
        connection factory, telemetry, and guidance scheduler.  Used by
        :meth:`run` and by the parallel fleet's executor factory (each
        worker — and each supervisor restart — gets its own)."""
        if telemetry is None:
            telemetry = self.config.telemetry
        guidance = NULL_GUIDANCE
        if self.config.guidance or self.config.plan_coverage \
                or self.config.track_plans:
            # plan_coverage without guidance observes passively: plans
            # are fingerprinted and dumped, generation is untouched.
            guidance = PlanGuidance(
                seed=self.config.seed if seed is None else seed,
                feedback=self.config.guidance,
                telemetry=telemetry)
        # Each runner gets its own RunnerConfig: reseed() mutates
        # config.seed, and concurrent workers sharing one config would
        # race on it (stamping reports with another worker's seed).
        return PQSRunner(self._connection, replace(self.config.runner),
                         telemetry=telemetry, guidance=guidance)

    def run(self) -> CampaignResult:
        runner = self.build_runner()
        guidance = runner.guidance
        observe = self.config.observe or NULL_OBSERVATORY
        quarantined: list[QuarantineRecord] = []
        recovery = RecoveryStats()
        if self.config.journal:
            stats, quarantined, recovery = self._run_journaled(runner)
        else:
            stats = runner.run(self.config.databases)
        result = CampaignResult(config=self.config, stats=stats,
                                quarantined=quarantined,
                                recovery=recovery)
        if guidance.enabled:
            result.plan_coverage = guidance.coverage
            observe.attach_coverage(guidance.coverage)
            if self.config.plan_coverage:
                guidance.coverage.dump(self.config.plan_coverage)
        if self.config.plan_timing:
            # Built from the per-round outcome dicts — the same records
            # a journal carries — so live, resumed, and parallel-merged
            # campaigns produce byte-identical archives.
            result.timing_archive = TimingArchive.from_outcomes(
                stats.plantime_outcomes)
            if self.config.timing_archive:
                result.timing_archive.dump(self.config.timing_archive)
        observe.mark_finished()
        reports_per_bug: dict[str, int] = {}
        seen_bugs: set[str] = set()
        for report in stats.reports:
            processed = self._process(report)
            if processed is None:
                result.unattributed.append(report)
                continue
            primary = primary_attribution(processed)
            if reports_per_bug.get(primary, 0) >= \
                    self.config.max_reports_per_bug:
                continue
            reports_per_bug[primary] = reports_per_bug.get(primary, 0) + 1
            processed.triage = self._triage(primary, seen_bugs)
            seen_bugs.add(primary)
            result.reports.append(processed)
        return result

    # -- durable (journaled) execution -------------------------------------
    def _fingerprint(self) -> dict:
        from repro.campaigns.journal import JOURNAL_VERSION

        fingerprint = {"version": JOURNAL_VERSION,
                       "dialect": self.config.dialect,
                       "seed": self.config.seed,
                       "databases": self.config.databases,
                       "bug_ids": sorted(self.bugs.enabled)}
        if self.config.guidance:
            # Feedback changes generation, so a guided journal must not
            # silently continue an unguided hunt.  The key is added only
            # when on, keeping journals from before this field resumable.
            fingerprint["guidance"] = True
        if self.config.multiplan:
            # Same only-when-on rule: multiplan journals carry multiplan
            # findings and outcome records, so they must not be resumed
            # by (or resume) a plain hunt; off leaves journal bytes
            # identical to a pre-multiplan build.
            fingerprint["multiplan"] = True
        if self.config.plan_timing:
            # Timing journals carry plantime outcomes the resumed
            # archive is rebuilt from; an untimed continuation would
            # silently produce a partial archive.
            fingerprint["plan_timing"] = True
        return fingerprint

    def _run_journaled(self, runner: PQSRunner):
        """Per-round execution with a durable JSONL journal.

        Each round runs under :func:`~repro.campaigns.journal.round_seed`
        — an independent derivation from (campaign seed, round index) —
        so completed rounds loaded from the journal and freshly-run
        rounds compose into exactly the statistics an uninterrupted run
        would produce.  Execution is a one-shard fleet: the same
        :class:`~repro.campaigns.scheduler.RoundQueue` and
        :class:`~repro.campaigns.executor.RoundExecutor` the parallel
        campaign runs per worker, driven inline (no supervisor thread),
        so quarantine and recovery semantics are identical in both modes.
        """
        telemetry = self.config.telemetry or NULL_TELEMETRY
        with CampaignJournal(self.config.journal) as journal:
            fingerprint = self._fingerprint()
            state = (journal.load_state(fingerprint)
                     if self.config.resume else JournalState())
            journal.start(fingerprint, fresh=state.empty)
            record_recovery(state.recovery, telemetry,
                            recovered=len(state.rounds))
            observe = self.config.observe or NULL_OBSERVATORY
            queue = RoundQueue(
                range(self.config.databases), self.config.seed,
                quarantine_threshold=self.config.quarantine_threshold)
            queue.preload(state.rounds, state.quarantined)
            observe.attach_queue(queue)
            if runner.guidance.enabled:
                # Guidance replays each journaled round so its seen-set,
                # pool, and scheduling stream match the original
                # process exactly (exact for prefix-complete journals;
                # a corruption gap re-runs only the lost round).
                for index in sorted(state.rounds):
                    record = state.rounds[index]
                    runner.guidance.restore_round(record.seed,
                                                  record.plans)
            # The runner counts rounds it actually executes;
            # journal-loaded rounds still advance the live progress line.
            telemetry.counter(metric_names.ROUNDS).inc(len(state.rounds))
            executor = RoundExecutor(
                0, runner, queue, self.config.seed,
                journal=journal, telemetry=telemetry,
                events=observe.events)
            executor.run_loop()
        quarantined = queue.quarantined_in_order()
        stats = stats_from_records(queue.records_in_order(), quarantined)
        return stats, quarantined, state.recovery

    # -- per-report processing ---------------------------------------------
    def _process(self, report: BugReport) -> Optional[BugReport]:
        if report.oracle is Oracle.MULTIPLAN:
            return self._process_multiplan(report)
        if not self.replayer.manifests(report.test_case):
            return None
        if self.config.reduce:
            reducer = TestCaseReducer(self.replayer.manifests)
            try:
                report.test_case = reducer.reduce(report.test_case)
                report.reduced = True
            except ReductionError:
                return None
            # Expression-level shrinking of the final query (the paper's
            # authors "manually shortened them where possible", §4.1).
            from repro.core.shrink import QueryShrinker

            shrinker = QueryShrinker(self.replayer.manifests)
            report.test_case = shrinker.shrink(report.test_case)
        report.attributed_bugs = self.replayer.attribute(report.test_case)
        if not report.attributed_bugs:
            return None
        # The reduced case is the reported artifact; re-derive which
        # oracle it now trips (reduction may have turned an error case
        # into a wrong-rows case, or vice versa).
        kind = self.replayer.difference_kind(report.test_case)
        if kind == "rows":
            report.oracle = Oracle.CONTAINMENT
        elif kind == "error":
            report.oracle = Oracle.ERROR
        elif kind == "crash":
            report.oracle = Oracle.CRASH
        # Order the primary attribution first so every consumer of
        # attributed_bugs[0] charges the same defect.
        primary = primary_attribution(report)
        report.attributed_bugs = [primary] + [
            b for b in report.attributed_bugs if b != primary]
        return report

    def _process_multiplan(self, report: BugReport,
                           ) -> Optional[BugReport]:
        """Reduce and attribute a multi-plan finding.

        The reducer's failure predicate is *plan divergence under the
        hints that exposed the finding* (recovered from the report's
        ``plan_results``), not buggy-vs-clean disagreement: a multiplan
        defect is by construction invisible to single-plan replay, so
        minimization must preserve the forced executions and the
        cross-plan check."""
        hints_list = [PlannerHints.from_dict(entry.get("hints", {}))
                      for entry in (report.plan_results or [])]
        if not hints_list:
            # A journal predating plan_results: retry with the two
            # cheapest universally-feasible plans.
            hints_list = [BASELINE, PlannerHints(force_full_scan=True)]
        replayer = self.multiplan_replayer

        def still_diverges(test_case) -> bool:
            return replayer.diverges(test_case, hints_list)

        if not still_diverges(report.test_case):
            return None
        if self.config.reduce:
            reducer = TestCaseReducer(still_diverges)
            try:
                report.test_case = reducer.reduce(report.test_case)
                report.reduced = True
            except ReductionError:
                return None
            from repro.core.shrink import QueryShrinker

            shrinker = QueryShrinker(still_diverges)
            report.test_case = shrinker.shrink(report.test_case)
        report.attributed_bugs = replayer.attribute(report.test_case,
                                                    hints_list)
        if not report.attributed_bugs:
            return None
        primary = primary_attribution(report)
        report.attributed_bugs = [primary] + [
            b for b in report.attributed_bugs if b != primary]
        return report

    def _triage(self, bug_id: str, seen: set[str]) -> str:
        if bug_id in seen:
            return "duplicate"
        return BUG_CATALOG[bug_id].triage
