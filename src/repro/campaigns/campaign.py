"""End-to-end bug-hunting campaigns with ground-truth scoring.

A campaign mirrors the paper's §4.1 methodology, compressed: run PQS
against a target with known (injected) defects, report findings, reduce
each finding's test case, and triage.  Where the paper's triage came
from upstream developers, ours comes from differential replay against
single-defect engines plus the defect catalog's recorded upstream
resolution (fixed / verified / docs / intended / duplicate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.campaigns.journal import CampaignJournal, RoundRecord, round_seed
from repro.campaigns.replay import DifferentialReplayer
from repro.core.reducer import TestCaseReducer
from repro.core.reports import BugReport, Oracle, RunStatistics
from repro.core.runner import PQSRunner, RunnerConfig
from repro.errors import ReductionError
from repro.guidance import NULL_GUIDANCE, PlanCoverage, PlanGuidance
from repro.minidb.bugs import BUG_CATALOG, BugRegistry, bugs_for_dialect
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry import names as metric_names

#: BugReport oracle value -> catalog oracle tag.
_ORACLE_TAG = {"contains": "contains", "error": "error",
               "segfault": "crash"}


def primary_attribution(report: BugReport) -> str:
    """The defect a report is charged to.

    A test case sometimes manifests under several single-defect engines
    (its statements trip more than one injection point); the report is
    charged to a defect whose *catalog oracle* matches the oracle that
    actually detected it, so e.g. an error-oracle finding is never
    credited to a containment defect that happens to co-manifest.
    """
    assert report.attributed_bugs
    tag = _ORACLE_TAG.get(report.oracle.value)
    for bug_id in report.attributed_bugs:
        if BUG_CATALOG[bug_id].oracle == tag:
            return bug_id
    return report.attributed_bugs[0]


@dataclass
class CampaignConfig:
    dialect: str = "sqlite"
    seed: int = 0
    databases: int = 50
    #: Defects to enable; None enables the dialect's full catalog.
    bug_ids: Optional[list[str]] = None
    reduce: bool = True
    #: Stop re-reporting a defect after this many reports (the authors
    #: likewise stopped filing duplicates).
    max_reports_per_bug: int = 2
    #: JSONL journal path.  When set, each database round gets an
    #: independently-derived seed and its raw results are persisted as
    #: the campaign runs, so an interrupted hunt can be continued.
    journal: Optional[str] = None
    #: Continue from an existing journal instead of starting over.
    resume: bool = False
    #: Observability sink (metrics registry + tracer); None runs with
    #: the no-op :data:`repro.telemetry.NULL_TELEMETRY`.  Deliberately
    #: not part of the journal fingerprint: turning telemetry on must
    #: not invalidate a resumable hunt.
    telemetry: Optional["Telemetry"] = None
    #: Query-plan-coverage guidance (repro.guidance).  Unlike telemetry
    #: this *is* journal-fingerprinted when on: feedback changes what
    #: the campaign generates, so a guided journal cannot silently
    #: continue an unguided hunt (or vice versa).
    guidance: bool = False
    #: Write the final plan-coverage set (PlanCoverage JSON) here.
    #: Setting a path without ``guidance=True`` observes plans
    #: *passively*: coverage is tracked and dumped but generation is the
    #: exact unguided stream.
    plan_coverage: Optional[str] = None
    #: Track plan coverage without dumping it (parallel workers use
    #: this; the merged set is dumped by the parent).
    track_plans: bool = False
    runner: RunnerConfig = field(default_factory=RunnerConfig)

    def __post_init__(self) -> None:
        self.runner.dialect = self.dialect
        self.runner.seed = self.seed


@dataclass
class CampaignResult:
    config: CampaignConfig
    stats: RunStatistics
    #: Final plan-coverage set when the campaign tracked plans
    #: (``guidance`` or ``plan_coverage`` configured); None otherwise.
    plan_coverage: Optional["PlanCoverage"] = None
    #: Reduced, attributed reports (unattributed findings excluded —
    #: they would be tool bugs, which the test suite asserts never
    #: happen).
    reports: list[BugReport] = field(default_factory=list)
    unattributed: list[BugReport] = field(default_factory=list)

    @property
    def detected_bug_ids(self) -> set[str]:
        out: set[str] = set()
        for report in self.reports:
            out.update(report.attributed_bugs)
        return out

    def true_bugs(self) -> list[BugReport]:
        """Reports the paper would count as true bugs (code fixes,
        documentation fixes, confirmed)."""
        return [r for r in self.reports
                if r.triage in ("fixed", "docs", "verified")]

    def table2_row(self) -> dict[str, int]:
        """This dialect's row of the paper's Table 2."""
        row = {"fixed": 0, "verified": 0, "intended": 0, "duplicate": 0}
        for report in self.reports:
            key = "fixed" if report.triage == "docs" else report.triage
            row[key] = row.get(key, 0) + 1
        return row

    def table3_row(self) -> dict[str, int]:
        """This dialect's row of the paper's Table 3 (true bugs per
        detecting oracle)."""
        row = {"contains": 0, "error": 0, "segfault": 0}
        for report in self.true_bugs():
            row[report.oracle.value] += 1
        return row


class Campaign:
    """Runs PQS against defect-injected MiniDB and scores the findings."""

    def __init__(self, config: CampaignConfig):
        self.config = config
        bug_ids = config.bug_ids
        if bug_ids is None:
            bug_ids = [b.bug_id for b in bugs_for_dialect(config.dialect)]
        self.bugs = BugRegistry(set(bug_ids))
        self.replayer = DifferentialReplayer(config.dialect, self.bugs)

    def _connection(self) -> MiniDBConnection:
        return MiniDBConnection(self.config.dialect,
                                bugs=BugRegistry(set(self.bugs.enabled)))

    def run(self) -> CampaignResult:
        guidance = NULL_GUIDANCE
        if self.config.guidance or self.config.plan_coverage \
                or self.config.track_plans:
            # plan_coverage without guidance observes passively: plans
            # are fingerprinted and dumped, generation is untouched.
            guidance = PlanGuidance(seed=self.config.seed,
                                    feedback=self.config.guidance,
                                    telemetry=self.config.telemetry)
        runner = PQSRunner(self._connection, self.config.runner,
                           telemetry=self.config.telemetry,
                           guidance=guidance)
        if self.config.journal:
            stats = self._run_journaled(runner)
        else:
            stats = runner.run(self.config.databases)
        result = CampaignResult(config=self.config, stats=stats)
        if guidance.enabled:
            result.plan_coverage = guidance.coverage
            if self.config.plan_coverage:
                guidance.coverage.dump(self.config.plan_coverage)
        reports_per_bug: dict[str, int] = {}
        seen_bugs: set[str] = set()
        for report in stats.reports:
            processed = self._process(report)
            if processed is None:
                result.unattributed.append(report)
                continue
            primary = primary_attribution(processed)
            if reports_per_bug.get(primary, 0) >= \
                    self.config.max_reports_per_bug:
                continue
            reports_per_bug[primary] = reports_per_bug.get(primary, 0) + 1
            processed.triage = self._triage(primary, seen_bugs)
            seen_bugs.add(primary)
            result.reports.append(processed)
        return result

    # -- durable (journaled) execution -------------------------------------
    def _fingerprint(self) -> dict:
        from repro.campaigns.journal import JOURNAL_VERSION

        fingerprint = {"version": JOURNAL_VERSION,
                       "dialect": self.config.dialect,
                       "seed": self.config.seed,
                       "databases": self.config.databases,
                       "bug_ids": sorted(self.bugs.enabled)}
        if self.config.guidance:
            # Feedback changes generation, so a guided journal must not
            # silently continue an unguided hunt.  The key is added only
            # when on, keeping journals from before this field resumable.
            fingerprint["guidance"] = True
        return fingerprint

    def _run_journaled(self, runner: PQSRunner) -> RunStatistics:
        """Per-round execution with a durable JSONL journal.

        Each round runs under :func:`~repro.campaigns.journal.round_seed`
        — an independent derivation from (campaign seed, round index) —
        so completed rounds loaded from the journal and freshly-run
        rounds compose into exactly the statistics an uninterrupted run
        would produce.
        """
        journal = CampaignJournal(self.config.journal)
        fingerprint = self._fingerprint()
        completed = (journal.load(fingerprint)
                     if self.config.resume else {})
        journal.start(fingerprint, fresh=not completed)
        stats = RunStatistics()
        telemetry = self.config.telemetry or NULL_TELEMETRY
        rounds_counter = telemetry.counter(metric_names.ROUNDS)
        try:
            for index in range(self.config.databases):
                record = completed.get(index)
                if record is None:
                    runner.reseed(round_seed(self.config.seed, index))
                    round_ = runner.run_database_round()
                    record = RoundRecord(
                        index=index,
                        seed=round_seed(self.config.seed, index),
                        statements=round_.statements,
                        queries=round_.queries, pivots=round_.pivots,
                        expected_errors=round_.expected_errors,
                        timeouts=round_.timeouts,
                        seconds=round_.seconds,
                        reports=round_.reports,
                        plans=runner.guidance.take_round_plans())
                    journal.append_round(record)
                else:
                    # The runner counts rounds it actually executes;
                    # journal-loaded rounds still advance the live
                    # progress line.  Guidance replays the journaled
                    # round so its seen-set, pool, and scheduling
                    # stream match the original process exactly.
                    if runner.guidance.enabled:
                        runner.guidance.restore_round(record.seed,
                                                      record.plans)
                    rounds_counter.inc()
                stats.databases += 1
                stats.statements += record.statements
                stats.queries += record.queries
                stats.pivots += record.pivots
                stats.expected_errors += record.expected_errors
                stats.timeouts += record.timeouts
                stats.seconds += record.seconds
                stats.reports.extend(record.reports)
        finally:
            journal.close()
        return stats

    # -- per-report processing ---------------------------------------------
    def _process(self, report: BugReport) -> Optional[BugReport]:
        if not self.replayer.manifests(report.test_case):
            return None
        if self.config.reduce:
            reducer = TestCaseReducer(self.replayer.manifests)
            try:
                report.test_case = reducer.reduce(report.test_case)
                report.reduced = True
            except ReductionError:
                return None
            # Expression-level shrinking of the final query (the paper's
            # authors "manually shortened them where possible", §4.1).
            from repro.core.shrink import QueryShrinker

            shrinker = QueryShrinker(self.replayer.manifests)
            report.test_case = shrinker.shrink(report.test_case)
        report.attributed_bugs = self.replayer.attribute(report.test_case)
        if not report.attributed_bugs:
            return None
        # The reduced case is the reported artifact; re-derive which
        # oracle it now trips (reduction may have turned an error case
        # into a wrong-rows case, or vice versa).
        kind = self.replayer.difference_kind(report.test_case)
        if kind == "rows":
            report.oracle = Oracle.CONTAINMENT
        elif kind == "error":
            report.oracle = Oracle.ERROR
        elif kind == "crash":
            report.oracle = Oracle.CRASH
        # Order the primary attribution first so every consumer of
        # attributed_bugs[0] charges the same defect.
        primary = primary_attribution(report)
        report.attributed_bugs = [primary] + [
            b for b in report.attributed_bugs if b != primary]
        return report

    def _triage(self, bug_id: str, seen: set[str]) -> str:
        if bug_id in seen:
            return "duplicate"
        return BUG_CATALOG[bug_id].triage
