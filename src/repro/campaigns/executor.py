"""The campaign round executor: one worker's lease-run-journal loop.

An executor owns one :class:`~repro.core.runner.PQSRunner` (its own
engines, RNG, guidance scheduler, and — under a parallel campaign — its
own private metrics registry) and drains the shared
:class:`~repro.campaigns.scheduler.RoundQueue`: lease a round index,
derive its campaign-global seed, run it, journal the result, settle the
lease.  Single-process journaled campaigns run one executor inline (a
one-shard fleet); :class:`~repro.campaigns.parallel.ParallelCampaign`
runs one per worker thread under the supervisor.

Failure handling is deliberately split by blast radius:

* :class:`~repro.errors.HarnessError` (the fault-isolation harness gave
  up on a round, or chaos injected a transient) settles *the round* via
  :meth:`RoundQueue.fail` — requeue below the quarantine threshold,
  quarantine record at it — and the worker moves on;
* anything else (including :class:`~repro.campaigns.chaos.ChaosKill`)
  escapes the loop and kills *the worker*; the supervisor requeues its
  leases and restarts it under the budget.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.campaigns.journal import CampaignJournal, RoundRecord, round_seed
from repro.campaigns.chaos import NULL_CHAOS
from repro.campaigns.scheduler import RoundQueue
from repro.errors import HarnessError
from repro.observe.events import NULL_EVENTS
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry import names as metric_names


class RoundExecutor:
    """Drains the round queue with one runner; safe to run on any
    thread (it shares nothing mutable but the queue, the journal, and
    its heartbeat slot, each internally synchronized or single-writer).

    With an event log attached the executor narrates its loop —
    ``round_leased`` / ``round_failed`` / ``round_completed`` /
    ``round_quarantined`` / ``bug_found`` / ``plan_novel`` /
    ``chaos_corruption`` — and binds ``worker``/``round``/``round_seed``
    tracer context around each round so trace spans join the journal and
    the event log on the same keys.  Outcome events (completed, bug,
    plan, quarantine) are emitted only when the queue *accepts* the
    settlement: a stolen lease's late duplicate produces no events, the
    same way its journal line is deduplicated on load.
    """

    def __init__(self, worker_id: int, runner, queue: RoundQueue,
                 campaign_seed: int,
                 journal: Optional[CampaignJournal] = None,
                 chaos=None,
                 telemetry: Optional[Telemetry] = None,
                 heartbeats: Optional[dict] = None,
                 events=None):
        self.worker_id = worker_id
        self.runner = runner
        self.queue = queue
        self.campaign_seed = campaign_seed
        self.journal = journal
        self.chaos = chaos or NULL_CHAOS
        self.telemetry = telemetry or NULL_TELEMETRY
        self.heartbeats = heartbeats if heartbeats is not None else {}
        self.events = events if events is not None else NULL_EVENTS
        self._m_requeued = self.telemetry.counter(
            metric_names.SUPERVISOR_REQUEUED)
        self._m_quarantined = self.telemetry.counter(
            metric_names.SUPERVISOR_QUARANTINED)
        #: Rounds this executor completed (not merely leased).
        self.rounds_completed = 0

    # -- the worker loop ----------------------------------------------------
    def run_loop(self) -> None:
        """Lease and run rounds until the queue settles or aborts."""
        while True:
            index = self.queue.lease(self.worker_id)
            if index is None:
                return
            self._beat()
            seed = round_seed(self.campaign_seed, index)
            self.events.emit("round_leased", round=index,
                             worker=self.worker_id, round_seed=seed,
                             attempt=self.queue.attempts(index))
            # Chaos may kill the worker here — after the lease, before
            # the round — precisely the window where a lost lease must
            # be requeued by the supervisor, not lost.
            self.chaos.on_lease(self.worker_id, index)
            try:
                self.chaos.on_round_start(index,
                                          self.queue.attempts(index))
                with self.telemetry.tracer.context(
                        worker=self.worker_id, round=index,
                        round_seed=seed):
                    record = self.run_round(index)
            except HarnessError as error:
                self._settle_failure(index, error)
                continue
            if self.journal is not None:
                self.journal.append_round(record)
                if self.chaos.on_journal_write(self.journal.path):
                    self.events.emit("chaos_corruption", round=index,
                                     worker=self.worker_id,
                                     path=self.journal.path)
            if self.queue.complete(index, record, self.worker_id):
                self._emit_outcome(record)
            self.rounds_completed += 1
            self._beat()

    def run_round(self, index: int) -> RoundRecord:
        """Run one round under its campaign-global derived seed."""
        seed = round_seed(self.campaign_seed, index)
        self.runner.reseed(seed)
        round_ = self.runner.run_database_round()
        return RoundRecord(
            index=index, seed=seed,
            statements=round_.statements, queries=round_.queries,
            pivots=round_.pivots,
            expected_errors=round_.expected_errors,
            timeouts=round_.timeouts, seconds=round_.seconds,
            reports=round_.reports,
            plans=self.runner.guidance.take_round_plans(),
            multiplan=round_.multiplan,
            plantime=round_.plantime)

    # -- internals ----------------------------------------------------------
    def _emit_outcome(self, record: RoundRecord) -> None:
        """Events for an *accepted* completion (exactly once per round)."""
        self.events.emit(
            "round_completed", round=record.index,
            worker=self.worker_id, round_seed=record.seed,
            statements=record.statements, queries=record.queries,
            pivots=record.pivots,
            expected_errors=record.expected_errors,
            timeouts=record.timeouts, reports=len(record.reports))
        for ordinal, report in enumerate(record.reports):
            self.events.emit(
                "bug_found", round=record.index,
                worker=self.worker_id, round_seed=record.seed,
                ordinal=ordinal, oracle=report.oracle.value,
                message=report.message)
        if record.plans:
            self.events.emit(
                "plan_novel", round=record.index,
                worker=self.worker_id, round_seed=record.seed,
                fingerprints=sorted(fp for fp, _ in record.plans))

    def _settle_failure(self, index: int, error: HarnessError) -> None:
        summary = f"{type(error).__name__}: {error}"
        seed = round_seed(self.campaign_seed, index)
        quarantine = self.queue.fail(index, summary)
        if quarantine is None:
            self._m_requeued.inc()
            self.events.emit("round_failed", round=index,
                             worker=self.worker_id, round_seed=seed,
                             attempt=self.queue.attempts(index),
                             error=summary)
            return
        self._m_quarantined.inc()
        if self.journal is not None:
            self.journal.append_quarantine(quarantine)
        self.events.emit("round_quarantined", round=index,
                         worker=self.worker_id, round_seed=seed,
                         error=summary)

    def _beat(self) -> None:
        self.heartbeats[self.worker_id] = time.monotonic()
