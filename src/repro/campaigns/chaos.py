"""Deterministic chaos injection for supervised campaigns.

The supervision layer's guarantees — work-stealing, bounded restarts,
quarantine, checksummed journal recovery — are only believable if they
are exercised.  :class:`ChaosPolicy` is a seeded fault schedule that
kills workers, injects transient round failures, and corrupts journal
bytes *from outside the unit under test*, so an acceptance test can
assert the strongest property there is: a chaos-ridden campaign
completes and produces results **bit-identical** to an undisturbed run.

Three fault channels, each independently seeded and budget-capped so a
chaos campaign always terminates:

* **worker kills** — :meth:`on_lease` raises :class:`ChaosKill` (a
  ``BaseException``, so no engine-level ``except Exception`` can swallow
  it) after a worker leases a round but before it executes; the
  supervisor must requeue the lease and restart the worker;
* **transient round failures** — :meth:`on_round_start` raises
  :class:`~repro.errors.HarnessError` for a deterministic, seed-chosen
  subset of rounds on their first ``transient_failures`` attempts; the
  scheduler must requeue and the retry must succeed.  Rounds listed in
  ``poison_rounds`` fail *every* attempt and must end up quarantined;
* **journal corruption** — :meth:`on_journal_write` flips a byte in an
  already-written journal line (never the header); a later resume must
  skip-and-count the line and re-run only that round.

All decisions derive from the policy seed (and, for per-round faults,
the round index), never from wall clock or object identity, so a chaos
run is reproducible under ``PYTHONHASHSEED`` like everything else.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.errors import HarnessError
from repro.guidance.scheduler import mix_seed
from repro.rng import RandomSource


class ChaosKill(BaseException):
    """Simulated abrupt worker death (the thread-pool analogue of
    ``kill -9`` on a fleet worker).  Derived from ``BaseException`` so
    nothing between the injection point and the supervisor can absorb
    it."""

    def __init__(self, message: str = "chaos: worker killed"):
        super().__init__(message)
        self.message = message


@dataclass
class ChaosEvents:
    """What a policy actually did — asserted on by the chaos tests."""

    kills: int = 0
    transients: int = 0
    corruptions: int = 0
    poisoned: int = 0

    @property
    def any(self) -> int:
        return self.kills + self.transients + self.corruptions \
            + self.poisoned


@dataclass
class ChaosPolicy:
    """A seeded, budget-capped fault schedule for one campaign run."""

    seed: int = 0
    #: Probability a lease event kills the leasing worker.
    kill_probability: float = 0.15
    #: Hard cap on kills (keep below the fleet's total restart budget).
    max_kills: int = 3
    #: Fraction (percent) of round indexes that fail transiently.
    transient_percent: int = 25
    #: Failed attempts each transient round makes before succeeding
    #: (keep below the quarantine threshold).
    transient_failures: int = 1
    #: Probability a journal append corrupts one earlier line.
    corrupt_probability: float = 0.2
    max_corruptions: int = 2
    #: Round indexes that fail on *every* attempt — these must be
    #: quarantined, never abort the campaign.
    poison_rounds: frozenset = frozenset()
    events: ChaosEvents = field(default_factory=ChaosEvents)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._rng = RandomSource(mix_seed(self.seed, 0xC4A05))

    enabled = True

    # -- fault channels -----------------------------------------------------
    def on_lease(self, slot: int, index: int) -> None:
        """May raise :class:`ChaosKill` after a lease is taken."""
        with self._lock:
            if self.events.kills >= self.max_kills:
                return
            if not self._rng.flip(self.kill_probability):
                return
            self.events.kills += 1
        raise ChaosKill(f"chaos: killed worker {slot} holding "
                        f"round {index}")

    def on_round_start(self, index: int, attempt: int) -> None:
        """May raise :class:`~repro.errors.HarnessError` before a round
        executes (a stand-in for e.g. the subprocess harness exhausting
        its replay budget)."""
        if index in self.poison_rounds:
            with self._lock:
                self.events.poisoned += 1
            raise HarnessError(
                f"chaos: poison round {index} (attempt {attempt + 1})")
        if not self._is_transient(index):
            return
        if attempt >= self.transient_failures:
            return
        with self._lock:
            self.events.transients += 1
        raise HarnessError(
            f"chaos: transient failure on round {index} "
            f"(attempt {attempt + 1})")

    def on_journal_write(self, path: str) -> bool:
        """Maybe flip one byte in an already-written journal line."""
        with self._lock:
            if self.events.corruptions >= self.max_corruptions:
                return False
            if not self._rng.flip(self.corrupt_probability):
                return False
            pick = self._rng.int_between(0, 2**30)
        if not self._corrupt_line(path, pick):
            return False
        with self._lock:
            self.events.corruptions += 1
        return True

    # -- internals ----------------------------------------------------------
    def _is_transient(self, index: int) -> bool:
        # Membership depends only on (seed, index): stable no matter
        # which worker leases the round, in what order, how many times.
        return mix_seed(self.seed, index) % 100 < self.transient_percent

    @staticmethod
    def _corrupt_line(path: str, pick: int) -> bool:
        """Flip a mid-line byte of a non-header line of *path*."""
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return False
        lines = data.split(b"\n")
        # Candidates: complete non-header lines long enough that the
        # flipped byte lands inside the record, not on a newline.
        candidates = [i for i, line in enumerate(lines)
                      if i >= 1 and len(line) > 10]
        if not candidates:
            return False
        target = candidates[pick % len(candidates)]
        offset = sum(len(line) + 1 for line in lines[:target]) \
            + len(lines[target]) // 2
        original = data[offset:offset + 1]
        replacement = b"#" if original != b"#" else b"@"
        try:
            with open(path, "r+b") as handle:
                handle.seek(offset)
                handle.write(replacement)
        except OSError:
            return False
        return True


class NullChaos:
    """Shared no-op: chaos off (the default everywhere)."""

    __slots__ = ()
    enabled = False

    def on_lease(self, slot: int, index: int) -> None:
        return None

    def on_round_start(self, index: int, attempt: int) -> None:
        return None

    def on_journal_write(self, path: str) -> bool:
        return False


#: The library-wide disabled default.
NULL_CHAOS = NullChaos()
