"""Feedback scheduling: turn plan novelty into generation pressure.

The scheduler closes the guidance loop described in the Query Plan
Guidance line of work: rounds whose queries exercised *novel* plans are
"interesting", and interesting rounds should be **mutated** — same base
state, plus an index/ANALYZE-heavy burst of extra statements — rather
than thrown away for a fresh random state.  Concretely:

* :meth:`PlanGuidance.begin_round` decides the round's state-generation
  plan.  Every guided round gets a **mutation burst** — extra statements
  drawn with :func:`mutation_weights` (heavy on ``CREATE INDEX`` —
  partial, expression, COLLATE, DESC — and on maintenance, whose ANALYZE
  unlocks skip-scan paths) — because that enrichment reaches plan shapes
  the plain action mix rarely sets up.  With probability
  ``reuse_probability`` (and a non-empty pool) the round *extends an
  interesting lineage*: it replays a pooled (state seed, burst chain)
  recipe and stacks one more burst on it; otherwise it explores a fresh
  per-round state seed with a single burst.
* :meth:`PlanGuidance.observe_query` fingerprints the plan of each
  synthesized query via the connection's ``query_plan`` hook and feeds
  the coverage set.
* :meth:`PlanGuidance.end_round` promotes the round's base seed into a
  bounded interesting-seed pool when the round produced novelty.

Two design rules mirror the telemetry subsystem:

* **off costs nothing** — :data:`NULL_GUIDANCE` is a shared null object;
  the runner's unguided path is bit-identical to a build without this
  package (the scheduler owns a *separate* :class:`RandomSource`, so
  even passive observation never perturbs the generation stream);
* **deterministic** — all scheduling randomness derives from the
  campaign seed via a SplitMix64-style mix, and journal resume replays
  rounds through :meth:`restore_round` so the pool and seen-set are
  reconstructed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import DBCrash, DBError
from repro.guidance.coverage import PlanCoverage
from repro.guidance.fingerprint import fingerprint
from repro.rng import RandomSource
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry import names as metric_names

if TYPE_CHECKING:  # pragma: no cover
    from repro.stategen.actions import ActionWeights

_MUTATION_WEIGHTS = None


def mutation_weights() -> "ActionWeights":
    """Statement mix for mutation bursts: index creation dominates (that
    is where partial/expression/COLLATE/DESC shape variety comes from),
    maintenance is boosted for ANALYZE (skip-scan precondition), and
    destructive actions are nearly suppressed so the interesting state
    survives its own mutation.

    Resolved lazily: importing :mod:`repro.stategen` at module scope
    would close an import cycle (stategen -> core -> this package's
    consumers), so the weights materialize on first use instead.
    """
    global _MUTATION_WEIGHTS
    if _MUTATION_WEIGHTS is None:
        from repro.stategen.actions import ActionWeights

        _MUTATION_WEIGHTS = ActionWeights(
            insert=10.0, update=6.0, delete=2.0, create_index=42.0,
            create_view=2.0, alter=3.0, maintenance=26.0, option=6.0,
            transaction=2.0, drop=1.0)
    return _MUTATION_WEIGHTS


def __getattr__(name: str):
    if name == "MUTATION_WEIGHTS":
        return mutation_weights()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

_MASK64 = (1 << 64) - 1


def mix_seed(a: int, b: int) -> int:
    """SplitMix64-style deterministic seed derivation (process-stable)."""
    x = ((a & _MASK64) * 0x9E3779B97F4A7C15 + (b & _MASK64)) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


@dataclass(slots=True)
class RoundProfile:
    """What the scheduler wants the runner to do for one round."""

    #: Seed for the round's state-generation RandomSource.
    state_seed: int
    #: Mutation bursts stacked on the base state, oldest first: for each
    #: seed, ``mutation_statements`` extra actions are drawn from a
    #: RandomSource(seed) with ``weights``.  Replaying the same chain
    #: reproduces the same enriched state; each scheduler reuse extends
    #: the chain by one burst, so interesting states grow progressively
    #: richer instead of being re-derived from the original base.
    mutations: tuple[int, ...] = ()
    mutation_statements: int = 0
    #: Statement mix for the mutation bursts; None for non-mutating
    #: profiles (filled with :func:`mutation_weights` by the scheduler).
    weights: Optional["ActionWeights"] = None


class NullGuidance:
    """Shared no-op: guidance off.  Mirrors NULL_TELEMETRY."""

    __slots__ = ()
    enabled = False

    def begin_round(self, round_seed: int) -> Optional[RoundProfile]:
        return None

    def observe_query(self, connection, sql: str) -> Optional[str]:
        return None

    def end_round(self) -> int:
        return 0

    def take_round_plans(self) -> list[tuple[str, str]]:
        return []


#: The library-wide disabled default.
NULL_GUIDANCE = NullGuidance()


class PlanGuidance:
    """Coverage tracker + feedback scheduler (guidance on).

    ``feedback=False`` gives *passive* mode: plans are fingerprinted and
    counted but ``begin_round`` returns None, so state generation is
    exactly the unguided stream — the honest baseline for measuring what
    feedback buys (see ``benchmarks/bench_guidance.py``).
    """

    enabled = True

    def __init__(self, seed: int = 0, pool_size: int = 16,
                 reuse_probability: float = 0.3,
                 mutation_statements: int = 16,
                 max_mutations: int = 5,
                 feedback: bool = True,
                 telemetry: Optional[Telemetry] = None):
        self.coverage = PlanCoverage()
        #: Interesting states as (state_seed, mutation_chain) recipes.
        self.pool: list[tuple[int, tuple[int, ...]]] = []
        self.pool_size = pool_size
        self.reuse_probability = reuse_probability
        self.mutation_statements = mutation_statements
        self.max_mutations = max_mutations
        self.feedback = feedback
        # Dedicated stream: scheduling draws must not perturb the
        # runner's generation RNG (the guidance-off bit-identity
        # guarantee extends to passive mode).
        self.rng = RandomSource(mix_seed(seed, 0x67756964616E6365))
        self._rounds_started = 0
        self._round_recipe: Optional[tuple[int, tuple[int, ...]]] = None
        self._round_plans: list[tuple[str, str]] = []
        t = telemetry or NULL_TELEMETRY
        self._g_distinct = t.gauge(metric_names.GUIDANCE_PLANS_DISTINCT)
        self._m_novel_rounds = t.counter(
            metric_names.GUIDANCE_NOVEL_ROUNDS)
        self._m_lookups = t.counter(metric_names.GUIDANCE_PLAN_LOOKUPS)

    # -- the per-round loop -------------------------------------------------
    def begin_round(self, round_seed: int) -> Optional[RoundProfile]:
        """Decide this round's state plan; None means "run unguided"."""
        self._round_plans = []
        self._rounds_started += 1
        if not self.feedback:
            self._round_recipe = None
            return None
        if self.pool and self.rng.flip(self.reuse_probability):
            # Exploit: extend an interesting lineage by one more burst.
            base, chain = self.rng.choice(self.pool)
            nonce = self.rng.int_between(0, 2**31 - 1)
            if len(chain) >= self.max_mutations:
                # Fully-grown lineage: replace its newest burst so the
                # chain (and per-round replay cost) stays bounded.
                chain = chain[:self.max_mutations - 1]
            chain = chain + (mix_seed(base, nonce),)
        else:
            # Explore: a fresh state — still with one mutation burst,
            # because index/ANALYZE-heavy enrichment is what reaches the
            # plan shapes the plain action mix rarely sets up.
            base = mix_seed(round_seed, self._rounds_started)
            chain = (mix_seed(base, 1),)
        profile = RoundProfile(
            state_seed=base,
            mutations=chain,
            mutation_statements=self.mutation_statements,
            weights=mutation_weights())
        self._round_recipe = (profile.state_seed, profile.mutations)
        return profile

    def observe_query(self, connection, sql: str) -> Optional[str]:
        """Fingerprint *sql*'s plan on *connection*; returns the
        fingerprint, or None when the target cannot explain it.

        Introspection failures are swallowed: guidance is advisory and
        must never turn a working hunt into a failing one.
        """
        plan_fn = getattr(connection, "query_plan", None)
        if plan_fn is None:
            return None
        try:
            steps = plan_fn(sql)
        except (DBError, DBCrash):
            return None
        if not steps:
            return None
        self._m_lookups.inc()
        fp = fingerprint(steps)
        if self.coverage.observe(fp, sql):
            self._round_plans.append((fp, sql))
            self._g_distinct.set(self.coverage.distinct)
        return fp

    def end_round(self) -> int:
        """Close the round; returns its novel-plan count."""
        novel = len(self._round_plans)
        if novel:
            self._m_novel_rounds.inc()
            if self.feedback and self._round_recipe is not None:
                self._pool_add(self._round_recipe)
        return novel

    def take_round_plans(self) -> list[tuple[str, str]]:
        """The round's novel (fingerprint, example) pairs, for journaling."""
        plans, self._round_plans = self._round_plans, []
        return plans

    # -- journal resume -----------------------------------------------------
    def restore_round(self, round_seed: int,
                      plans: list[tuple[str, str]]) -> None:
        """Replay one journaled round without executing anything.

        Makes exactly the RNG draws :meth:`begin_round` made originally,
        then replays the journaled novel plans, so after restoring every
        completed round the pool, seen-set, and scheduling stream are in
        the same state as the original process at that point.
        """
        self.begin_round(round_seed)
        for fp, example in plans:
            if self.coverage.observe(fp, example):
                self._round_plans.append((fp, example))
        self._g_distinct.set(self.coverage.distinct)
        self.end_round()

    # -- internals ----------------------------------------------------------
    def _pool_add(self, recipe: tuple[int, tuple[int, ...]]) -> None:
        if recipe in self.pool:
            return
        self.pool.append(recipe)
        if len(self.pool) > self.pool_size:
            self.pool.pop(0)
