"""``repro.guidance`` — query-plan-guided generation.

Plan introspection (adapter ``query_plan`` hooks + MiniDB ``EXPLAIN``),
schema-shape plan fingerprinting, coverage tracking, and the feedback
scheduler that biases :class:`~repro.core.runner.PQSRunner` toward
mutating states that produced novel plans.  Off by default everywhere:
:data:`NULL_GUIDANCE` follows the telemetry package's null-object
pattern, and a hunt without ``--guidance`` is bit-identical to one run
before this package existed.

Usage::

    from repro.guidance import PlanGuidance

    guidance = PlanGuidance(seed=42, telemetry=t)
    runner = PQSRunner(factory, config, guidance=guidance)
    runner.run(100)
    print(guidance.coverage.distinct, "distinct plans")
"""

from repro.guidance.coverage import PlanCoverage
from repro.guidance.fingerprint import (
    PlanStep,
    canonicalize,
    fingerprint,
    parse_sqlite_eqp_detail,
    steps_from_minidb,
    steps_from_sqlite_eqp,
)
from repro.guidance.scheduler import (
    NULL_GUIDANCE,
    NullGuidance,
    PlanGuidance,
    RoundProfile,
    mix_seed,
    mutation_weights,
)

__all__ = [
    "MUTATION_WEIGHTS", "NULL_GUIDANCE", "NullGuidance", "PlanCoverage",
    "PlanGuidance", "PlanStep", "RoundProfile", "canonicalize",
    "fingerprint", "mix_seed", "mutation_weights",
    "parse_sqlite_eqp_detail", "steps_from_minidb",
    "steps_from_sqlite_eqp",
]


def __getattr__(name: str):
    # MUTATION_WEIGHTS resolves lazily (it needs repro.stategen, which
    # would close an import cycle if pulled in at package-import time).
    if name == "MUTATION_WEIGHTS":
        return mutation_weights()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
