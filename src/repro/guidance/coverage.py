"""The seen-fingerprint set behind plan-coverage guidance.

A :class:`PlanCoverage` records every distinct plan fingerprint observed
during a campaign, with one example query per fingerprint (the first
query that produced it — invaluable when triaging what a fingerprint
*means*).  It round-trips through JSON so:

* journaled campaigns persist per-round novel plans and ``--resume``
  rebuilds the seen-set without re-running rounds;
* :class:`~repro.campaigns.parallel.ParallelCampaign` merges per-worker
  coverage into one campaign-wide set;
* ``hunt --plan-coverage PATH`` dumps the final set for offline
  analysis.
"""

from __future__ import annotations

import json
from typing import Optional


class PlanCoverage:
    """Insertion-ordered map of plan fingerprint -> example query."""

    def __init__(self) -> None:
        self._seen: dict[str, str] = {}

    def observe(self, fingerprint: str, example: str = "") -> bool:
        """Record one observation; True when the plan is novel."""
        if fingerprint in self._seen:
            return False
        self._seen[fingerprint] = example
        return True

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    @property
    def distinct(self) -> int:
        return len(self._seen)

    def example(self, fingerprint: str) -> Optional[str]:
        return self._seen.get(fingerprint)

    def fingerprints(self) -> list[str]:
        return list(self._seen)

    def merge(self, other: "PlanCoverage") -> int:
        """Fold *other* in; returns how many fingerprints were new."""
        added = 0
        for fp, example in other._seen.items():
            if self.observe(fp, example):
                added += 1
        return added

    # -- persistence --------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "distinct": self.distinct,
            "plans": [{"fingerprint": fp, "example": example}
                      for fp, example in self._seen.items()],
        }

    @classmethod
    def from_json(cls, data: dict) -> "PlanCoverage":
        coverage = cls()
        for entry in data.get("plans", []):
            coverage.observe(entry["fingerprint"],
                             entry.get("example", ""))
        return coverage

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "PlanCoverage":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))
