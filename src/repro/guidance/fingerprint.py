"""Plan canonicalization and fingerprinting.

Query Plan Guidance (Ba & Rigger, "Testing Database Engines via Query
Plan Guidance") steers generation toward *unseen query plans*.  That
needs a notion of plan identity that is

* **schema-shape invariant** — two states that differ only in table and
  index *names* produce the same fingerprint, so coverage measures plan
  structure, not identifier entropy;
* **literal-free** — plans never embed query literals (MiniDB EXPLAIN
  reports no values; sqlite EXPLAIN QUERY PLAN constraint lists are
  normalized down to their operators);
* **stable across processes** — fingerprints are truncated SHA-256
  digests, never Python ``hash()`` (which is salted per process), so a
  resumed or parallel campaign can merge seen-sets byte-for-byte.

The unit of identity is a sequence of :class:`PlanStep` rows.  Two
producers exist: MiniDB's ``EXPLAIN`` (already structured) and sqlite3's
``EXPLAIN QUERY PLAN`` (free-text detail strings, parsed tolerantly
across SQLite versions by :func:`parse_sqlite_eqp_detail`).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

#: Hex digits kept from the SHA-256 digest.  64 bits of fingerprint is
#: collision-safe for any realistic campaign (billions of plans).
FINGERPRINT_HEX_CHARS = 16


@dataclass(frozen=True, slots=True)
class PlanStep:
    """One canonicalizable row of a query plan."""

    kind: str                      # 'full-scan' | 'index-scan' | ...
    table: Optional[str] = None    # raw table name (canonicalized later)
    index: Optional[str] = None    # raw index name (canonicalized later)
    detail: str = ""               # literal-free, name-free annotations


def canonicalize(steps: Sequence[PlanStep]) -> str:
    """Render *steps* with identifiers replaced by shape tokens.

    Table names map to ``T0, T1, ...`` and index names to ``I0, I1,
    ...`` in order of first appearance (auto-generated PK/UNIQUE indexes
    collapse to the single token ``auto``), so the canonical text — and
    therefore the fingerprint — depends only on plan shape.
    """
    tables: dict[str, str] = {}
    indexes: dict[str, str] = {}
    parts = []
    for step in steps:
        table = _canonical_name(step.table, tables, "T")
        index = ("auto" if step.index and _is_auto_index(step.index)
                 else _canonical_name(step.index, indexes, "I"))
        parts.append(f"{step.kind}[{table},{index},{step.detail}]")
    return ";".join(parts)


def fingerprint(steps: Sequence[PlanStep]) -> str:
    """Stable hex fingerprint of a canonicalized plan."""
    digest = hashlib.sha256(canonicalize(steps).encode("utf-8"))
    return digest.hexdigest()[:FINGERPRINT_HEX_CHARS]


def _canonical_name(name: Optional[str], seen: dict[str, str],
                    prefix: str) -> str:
    if not name:
        return "-"
    key = name.lower()
    if key not in seen:
        seen[key] = f"{prefix}{len(seen)}"
    return seen[key]


_AUTO_INDEX = re.compile(r"(^sqlite_autoindex_|_autoindex_\d+$)",
                         re.IGNORECASE)


def _is_auto_index(name: str) -> bool:
    return bool(_AUTO_INDEX.search(name))


# ---------------------------------------------------------------------------
# MiniDB EXPLAIN rows -> PlanSteps
# ---------------------------------------------------------------------------

def steps_from_minidb(rows: Iterable[tuple]) -> list[PlanStep]:
    """Convert MiniDB ``EXPLAIN`` result rows (already plain Python
    values) into :class:`PlanStep` objects."""
    steps = []
    for table, kind, index, detail in rows:
        steps.append(PlanStep(kind=str(kind),
                              table=None if table in (None, "-")
                              else str(table),
                              index=None if index is None else str(index),
                              detail=str(detail or "")))
    return steps


# ---------------------------------------------------------------------------
# sqlite3 EXPLAIN QUERY PLAN detail strings -> PlanSteps
# ---------------------------------------------------------------------------
#
# The EQP detail format changed across SQLite versions — 3.24 says
# "SCAN TABLE t0" and "SEARCH TABLE t0 USING INDEX i0 (c0=?)", 3.36+
# drops the TABLE keyword ("SCAN t0").  The regexes below accept both,
# and everything they cannot classify degrades to a digit-stripped
# keyword form rather than an error, so a new SQLite never breaks
# guidance — it just coarsens unknown rows.

_EQP_SCAN = re.compile(
    r"^(SCAN|SEARCH)\s+(?:TABLE\s+)?(\S+)(?:\s+AS\s+\S+)?(.*)$",
    re.IGNORECASE)
_EQP_INDEX = re.compile(
    r"USING\s+(AUTOMATIC\s+)?(?:PARTIAL\s+)?(COVERING\s+)?INDEX\s+(\S+)",
    re.IGNORECASE)
_EQP_IPK = re.compile(r"USING\s+INTEGER\s+PRIMARY\s+KEY", re.IGNORECASE)
_EQP_TEMP_BTREE = re.compile(r"^USE\s+TEMP\s+B-TREE\s+FOR\s+(.+)$",
                             re.IGNORECASE)
_EQP_CONSTRAINT = re.compile(r"\(([^()]*)\)\s*$")
_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def parse_sqlite_eqp_detail(detail: str) -> PlanStep:
    """One EQP detail string -> one :class:`PlanStep`, version-tolerant."""
    text = detail.strip()
    m = _EQP_SCAN.match(text)
    if m:
        verb, table, rest = m.group(1).upper(), m.group(2), m.group(3)
        tags = []
        index = None
        im = _EQP_INDEX.search(rest)
        if im:
            if im.group(1):
                tags.append("automatic")
            if im.group(2):
                tags.append("covering")
            index = im.group(3)
        elif _EQP_IPK.search(rest):
            index = "<ipk>"
            tags.append("ipk")
        if verb == "SEARCH":
            cm = _EQP_CONSTRAINT.search(rest)
            if cm:
                tags.append(_canonical_constraint(cm.group(1)))
        kind = "index-scan" if index is not None else "full-scan"
        if verb == "SCAN" and index is not None:
            tags.append("index-order")
        return PlanStep(kind=kind, table=table, index=index,
                        detail=" ".join(t for t in tags if t))
    m = _EQP_TEMP_BTREE.match(text)
    if m:
        return PlanStep(kind="temp-btree",
                        detail=m.group(1).strip().lower())
    return _eqp_fallback(text)


def _canonical_constraint(constraint: str) -> str:
    """Strip identifiers and literals from an EQP constraint list.

    ``c0=? AND c1>?`` and ``x=? AND y>?`` both canonicalize to
    ``(=? AND >?)`` — the shape of the index lookup, nothing else.
    """
    stripped = _WORD.sub(
        lambda m: m.group(0) if m.group(0).upper() == "AND" else "",
        constraint)
    return "(" + re.sub(r"\s+", " ", stripped).strip() + ")"


def _eqp_fallback(text: str) -> PlanStep:
    """Unrecognized EQP rows (COMPOUND, MERGE, SUBQUERY, CO-ROUTINE,
    MATERIALIZE, ...) keep their keywords, shorn of numbering and of
    identifiers.  SQLite prints keywords upper-case and preserves user
    identifier case, so all-upper words are the keyword skeleton."""
    words = [w.lower() for w in _WORD.findall(text) if w.isupper()]
    return PlanStep(kind="other", detail=" ".join(words))


def steps_from_sqlite_eqp(details: Iterable[str]) -> list[PlanStep]:
    return [parse_sqlite_eqp_detail(d) for d in details]
