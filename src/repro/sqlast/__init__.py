"""Expression abstract syntax trees.

The PQS generator builds these trees (paper Algorithm 1), the exact
interpreter in :mod:`repro.interp` evaluates them against the pivot row
(Algorithm 2), the rectifier wraps them to yield TRUE (Algorithm 3), and
:mod:`repro.sqlast.render` turns them into dialect-specific SQL text for the
system under test.
"""

from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    BinaryOp,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    Expr,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
    walk,
)
from repro.sqlast.render import render_expr

__all__ = [
    "BetweenNode",
    "BinaryNode",
    "BinaryOp",
    "CaseNode",
    "CastNode",
    "CollateNode",
    "ColumnNode",
    "Expr",
    "FunctionNode",
    "InListNode",
    "LiteralNode",
    "PostfixNode",
    "PostfixOp",
    "UnaryNode",
    "UnaryOp",
    "render_expr",
    "walk",
]
