"""sqlite ``INDEXED BY`` / ``NOT INDEXED`` clause injection.

sqlite forces plans per *table reference*: ``FROM t INDEXED BY i`` pins
``t`` to index ``i``, ``FROM t NOT INDEXED`` pins it to a sequential
scan.  The multi-plan oracle synthesizes its queries, so the forcing
clause has to be spliced into already-rendered SQL text.  This module
does that with a small token scanner rather than a full parser: it
walks the statement, recognizes table references in FROM/JOIN position
at every nesting depth (subqueries in FROM included), skips string
literals and quoted identifiers, and inserts the clause after the
reference's alias.

Only SELECT text produced by :mod:`repro.sqlast.render` (plus the
hand-written shapes the tests use) needs to round-trip — this is not a
general SQL rewriter — but quoted/renamed tables, ``AS`` and bare
aliases, joins, and nested FROM clauses are all handled.
"""

from __future__ import annotations

from typing import Optional

#: Keywords that may directly follow a table reference and therefore can
#: never be a bare alias.
_NOT_AN_ALIAS = frozenset({
    "AS", "ON", "USING", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS",
    "NATURAL", "UNION", "INTERSECT", "EXCEPT", "INDEXED", "NOT",
})

#: Keywords that terminate a FROM list (a later comma no longer
#: introduces a table reference).
_FROM_TERMINATORS = frozenset({
    "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "UNION",
    "INTERSECT", "EXCEPT", "ON", "USING", "SELECT",
})


def _tokenize(sql: str) -> list[tuple[str, int, int]]:
    """``(kind, start, end)`` tokens; kind is word|qword|string|punct."""
    out: list[tuple[str, int, int]] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            out.append(("string", i, min(j + 1, n)))
            i = min(j + 1, n)
            continue
        if ch == '"':
            j = i + 1
            while j < n:
                if sql[j] == '"':
                    if j + 1 < n and sql[j + 1] == '"':
                        j += 2
                        continue
                    break
                j += 1
            out.append(("qword", i, min(j + 1, n)))
            i = min(j + 1, n)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            out.append(("word", i, j))
            i = j
            continue
        out.append(("punct", i, i + 1))
        i += 1
    return out


def _unquote(sql: str, kind: str, start: int, end: int) -> str:
    text = sql[start:end]
    if kind == "qword" and len(text) >= 2:
        return text[1:-1].replace('""', '"')
    return text


def _insertion_points(sql: str,
                      table: Optional[str]) -> list[int]:
    """Offsets (into *sql*) after each matching table reference's alias.

    ``table=None`` matches every table reference (``NOT INDEXED``);
    otherwise only references whose unquoted name matches
    case-insensitively.
    """
    tokens = _tokenize(sql)
    points: list[int] = []
    #: Per paren depth: are we inside a FROM list?
    in_from: dict[int, bool] = {}
    depth = 0
    expect_table = False
    i = 0
    while i < len(tokens):
        kind, start, end = tokens[i]
        text = sql[start:end]
        upper = text.upper() if kind == "word" else ""
        if kind == "punct":
            if text == "(":
                depth += 1
                expect_table = False
            elif text == ")":
                in_from.pop(depth, None)
                depth -= 1
            elif text == "," and in_from.get(depth):
                expect_table = True
            i += 1
            continue
        if kind == "word" and upper == "FROM":
            in_from[depth] = True
            expect_table = True
            i += 1
            continue
        if kind == "word" and upper == "JOIN":
            expect_table = True
            i += 1
            continue
        if kind == "word" and upper in _FROM_TERMINATORS:
            if upper != "SELECT":
                in_from[depth] = False
            expect_table = False
            i += 1
            continue
        if expect_table and kind in ("word", "qword") \
                and upper not in _NOT_AN_ALIAS:
            name = _unquote(sql, kind, start, end)
            insert_at = end
            j = i + 1
            # AS alias / bare alias: the clause goes after the alias.
            if j < len(tokens) and tokens[j][0] == "word" and \
                    sql[tokens[j][1]:tokens[j][2]].upper() == "AS":
                j += 1
                if j < len(tokens) and tokens[j][0] in ("word", "qword"):
                    insert_at = tokens[j][2]
                    j += 1
            elif j < len(tokens) and tokens[j][0] in ("word", "qword"):
                jk, js, je = tokens[j]
                if jk == "qword" or \
                        sql[js:je].upper() not in _NOT_AN_ALIAS:
                    insert_at = je
                    j += 1
            if table is None or name.lower() == table.lower():
                points.append(insert_at)
            expect_table = False
            i = j
            continue
        expect_table = False
        i += 1
    return points


def _splice(sql: str, points: list[int], clause: str) -> str:
    out = sql
    for offset in sorted(points, reverse=True):
        out = out[:offset] + clause + out[offset:]
    return out


def force_index(sql: str, table: str, index: str) -> str:
    """Add ``INDEXED BY index`` to every reference to *table* in *sql*."""
    points = _insertion_points(sql, table)
    return _splice(sql, points, f" INDEXED BY {index}")


def force_no_index(sql: str) -> str:
    """Add ``NOT INDEXED`` to every table reference in *sql*."""
    points = _insertion_points(sql, None)
    return _splice(sql, points, " NOT INDEXED")
