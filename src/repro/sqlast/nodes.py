"""Expression AST node classes.

Nodes are pure data: evaluation lives in :mod:`repro.interp` (so the oracle
interpreter and MiniDB's engine-side evaluator can share or diverge
deliberately) and rendering lives in :mod:`repro.sqlast.render`.

Every node is immutable and hashable so generated expressions can be
deduplicated, cached and shrunk structurally by the reducer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.values import Value


class UnaryOp(enum.Enum):
    NOT = "NOT"
    MINUS = "-"
    PLUS = "+"
    BITNOT = "~"


class PostfixOp(enum.Enum):
    """Postfix predicates (unary operators written after the operand)."""

    ISNULL = "ISNULL"
    NOTNULL = "NOTNULL"
    IS_TRUE = "IS TRUE"
    IS_FALSE = "IS FALSE"
    IS_NOT_TRUE = "IS NOT TRUE"
    IS_NOT_FALSE = "IS NOT FALSE"


class BinaryOp(enum.Enum):
    # arithmetic
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    # string
    CONCAT = "||"
    # bitwise
    BITAND = "&"
    BITOR = "|"
    SHL = "<<"
    SHR = ">>"
    # comparison
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    # null-aware comparison
    IS = "IS"
    IS_NOT = "IS NOT"
    NULL_SAFE_EQ = "<=>"  # MySQL
    # pattern matching
    LIKE = "LIKE"
    NOT_LIKE = "NOT LIKE"
    GLOB = "GLOB"  # SQLite
    # logical
    AND = "AND"
    OR = "OR"

    @property
    def is_comparison(self) -> bool:
        return self in _COMPARISONS

    @property
    def is_logical(self) -> bool:
        return self in (BinaryOp.AND, BinaryOp.OR)


_COMPARISONS = frozenset(
    {
        BinaryOp.EQ,
        BinaryOp.NE,
        BinaryOp.LT,
        BinaryOp.LE,
        BinaryOp.GT,
        BinaryOp.GE,
        BinaryOp.IS,
        BinaryOp.IS_NOT,
        BinaryOp.NULL_SAFE_EQ,
        BinaryOp.LIKE,
        BinaryOp.NOT_LIKE,
        BinaryOp.GLOB,
    }
)


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class for all expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True, slots=True)
class LiteralNode(Expr):
    """A constant value."""

    value: Value


@dataclass(frozen=True, slots=True)
class ColumnNode(Expr):
    """A reference to ``table.column``.

    ``collation`` records the column's declared collating sequence (if any)
    and ``affinity`` its type affinity ('INTEGER', 'TEXT', 'REAL', 'NUMERIC',
    'BLOB' or None), so the interpreter can compare values exactly the way
    the engine will.  Neither annotation is rendered into SQL text.
    """

    table: str
    column: str
    collation: Optional[str] = None
    affinity: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True, slots=True)
class UnaryNode(Expr):
    op: UnaryOp
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True, slots=True)
class PostfixNode(Expr):
    op: PostfixOp
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True, slots=True)
class BinaryNode(Expr):
    op: BinaryOp
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class BetweenNode(Expr):
    """``expr [NOT] BETWEEN lo AND hi``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, self.low, self.high)


@dataclass(frozen=True, slots=True)
class InListNode(Expr):
    """``expr [NOT] IN (item, ...)``."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,) + self.items


@dataclass(frozen=True, slots=True)
class CastNode(Expr):
    """``CAST(expr AS type_name)``; semantics of ``type_name`` are dialectal."""

    operand: Expr
    type_name: str

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True, slots=True)
class CollateNode(Expr):
    """``expr COLLATE name`` (SQLite)."""

    operand: Expr
    collation: str

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True, slots=True)
class CaseNode(Expr):
    """``CASE [operand] WHEN .. THEN .. [ELSE ..] END``."""

    operand: Optional[Expr]
    whens: tuple[tuple[Expr, Expr], ...]
    else_: Optional[Expr] = None

    def children(self) -> tuple[Expr, ...]:
        out: list[Expr] = []
        if self.operand is not None:
            out.append(self.operand)
        for cond, result in self.whens:
            out.append(cond)
            out.append(result)
        if self.else_ is not None:
            out.append(self.else_)
        return tuple(out)


@dataclass(frozen=True, slots=True)
class FunctionNode(Expr):
    """A scalar function call, e.g. ``ABS(x)`` or ``IFNULL(a, b)``."""

    name: str
    args: tuple[Expr, ...] = field(default_factory=tuple)

    def children(self) -> tuple[Expr, ...]:
        return self.args


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield *expr* and all descendants, preorder."""
    stack: list[Expr] = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def depth(expr: Expr) -> int:
    """Height of the expression tree (a leaf has depth 1)."""
    kids = expr.children()
    if not kids:
        return 1
    return 1 + max(depth(k) for k in kids)


def count_nodes(expr: Expr) -> int:
    return sum(1 for _ in walk(expr))


def referenced_columns(expr: Expr) -> list[ColumnNode]:
    """All column references in *expr*, in preorder."""
    return [node for node in walk(expr) if isinstance(node, ColumnNode)]


ExprOrValue = Union[Expr, Value]
