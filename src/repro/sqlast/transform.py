"""Structural transformation over immutable expression trees.

:func:`transform` applies *fn* bottom-up: children are rebuilt first, then
``fn`` is given each (already-rebuilt) node and may return a replacement.
Because nodes are frozen dataclasses, an unchanged subtree is returned
as-is (no copying).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    Expr,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    UnaryNode,
)


def fold_negative_literals(expr: Expr) -> Expr:
    """Normalize parse-equivalent forms the way the parser produces them.

    Two rewrites, both semantics-preserving:

    * ``-(numeric literal)`` folds into a negative literal (the parser
      performs this fold, matching SQLite's handling of
      ``-9223372036854775808``);
    * ``x IS [NOT] NULL-literal`` becomes the postfix ISNULL/NOTNULL
      node, because that is how the rendered text ``x IS NOT NULL``
      reparses.

    Applying this to generator output makes ``parse(render(e)) ==
    fold(e)`` an exact round-trip property.
    """
    from repro.sqlast.nodes import (
        BinaryNode,
        BinaryOp,
        LiteralNode,
        PostfixNode,
        PostfixOp,
        UnaryNode,
        UnaryOp,
    )
    from repro.values import SQLType, Value, fits_int64

    def visit(node: Expr) -> Optional[Expr]:
        if isinstance(node, UnaryNode) and node.op is UnaryOp.MINUS and \
                isinstance(node.operand, LiteralNode):
            value = node.operand.value
            if value.t is SQLType.INTEGER:
                negated = -int(value.v)
                if fits_int64(negated):
                    return LiteralNode(Value.integer(negated))
                return LiteralNode(Value.real(float(negated)))
            if value.t is SQLType.REAL:
                return LiteralNode(Value.real(-float(value.v)))
        if isinstance(node, BinaryNode) and \
                node.op in (BinaryOp.IS, BinaryOp.IS_NOT) and \
                isinstance(node.right, LiteralNode) and \
                node.right.value.is_null:
            op = PostfixOp.ISNULL if node.op is BinaryOp.IS \
                else PostfixOp.NOTNULL
            return PostfixNode(op, node.left)
        return None

    return transform(expr, visit)


def transform(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Rebuild *expr* bottom-up, replacing nodes where *fn* returns one.

    Single-pass exact-type dispatch (node classes are final), ordered by
    how often each node kind appears in generated trees; an unchanged
    subtree is returned as-is (no copying).
    """
    t = type(expr)
    if t is LiteralNode or t is ColumnNode:
        rebuilt = expr
    elif t is BinaryNode:
        left = transform(expr.left, fn)
        right = transform(expr.right, fn)
        rebuilt = (expr if left is expr.left and right is expr.right
                   else BinaryNode(expr.op, left, right))
    elif t is UnaryNode:
        child = transform(expr.operand, fn)
        rebuilt = (expr if child is expr.operand
                   else UnaryNode(expr.op, child))
    elif t is PostfixNode:
        child = transform(expr.operand, fn)
        rebuilt = (expr if child is expr.operand
                   else PostfixNode(expr.op, child))
    elif t is BetweenNode:
        operand = transform(expr.operand, fn)
        low = transform(expr.low, fn)
        high = transform(expr.high, fn)
        rebuilt = (expr if (operand is expr.operand and low is expr.low
                            and high is expr.high)
                   else BetweenNode(operand, low, high, expr.negated))
    elif t is InListNode:
        operand = transform(expr.operand, fn)
        items = tuple(transform(item, fn) for item in expr.items)
        if operand is expr.operand and all(a is b for a, b
                                           in zip(items, expr.items)):
            rebuilt = expr
        else:
            rebuilt = InListNode(operand, items, expr.negated)
    elif t is CastNode:
        child = transform(expr.operand, fn)
        rebuilt = (expr if child is expr.operand
                   else CastNode(child, expr.type_name))
    elif t is CollateNode:
        child = transform(expr.operand, fn)
        rebuilt = (expr if child is expr.operand
                   else CollateNode(child, expr.collation))
    elif t is CaseNode:
        operand = transform(expr.operand, fn) if expr.operand else None
        whens = tuple((transform(c, fn), transform(r, fn))
                      for c, r in expr.whens)
        else_ = transform(expr.else_, fn) if expr.else_ else None
        rebuilt = CaseNode(operand, whens, else_)
    elif t is FunctionNode:
        args = tuple(transform(arg, fn) for arg in expr.args)
        rebuilt = (expr if all(a is b for a, b in zip(args, expr.args))
                   else FunctionNode(expr.name, args))
    else:
        rebuilt = expr
    replacement = fn(rebuilt)
    return replacement if replacement is not None else rebuilt
