"""Render expression ASTs to SQL text.

Output is fully parenthesized, the same strategy SQLancer uses: the point of
the generated SQL is to be unambiguous for the system under test, not pretty.
Literal syntax differs per dialect (blob literals, booleans), which is why
rendering takes the dialect name.
"""

from __future__ import annotations

from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    Expr,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    UnaryNode,
)
from repro.values import SQLType, Value

SQLITE = "sqlite"
MYSQL = "mysql"
POSTGRES = "postgres"


def render_literal(value: Value, dialect: str = SQLITE) -> str:
    """Render a :class:`Value` as a SQL literal in the given dialect."""
    if value.t is SQLType.NULL:
        return "NULL"
    if value.t is SQLType.INTEGER:
        return str(value.v)
    if value.t is SQLType.REAL:
        # Literals must round-trip exactly (repr is shortest-exact);
        # format_real's SQLite-style 15-digit text is for value->TEXT
        # casts, not for SQL source.  Infinities have no literal form,
        # so render an overflowing literal that parses back to inf.
        f = float(value.v)
        if f != f:
            return "NULL"
        if f == float("inf"):
            return "9e999"
        if f == float("-inf"):
            return "-9e999"
        return repr(f)
    if value.t is SQLType.TEXT:
        escaped = str(value.v).replace("'", "''")
        if dialect == MYSQL:
            # MySQL additionally treats backslash as an escape character.
            escaped = escaped.replace("\\", "\\\\")
        return f"'{escaped}'"
    if value.t is SQLType.BLOB:
        hexed = bytes(value.v).hex().upper()
        if dialect == POSTGRES:
            return f"'\\x{hexed}'::bytea"
        return f"X'{hexed}'"
    if value.t is SQLType.BOOLEAN:
        if dialect == POSTGRES:
            return "TRUE" if value.v else "FALSE"
        return "1" if value.v else "0"
    raise ValueError(f"cannot render {value!r}")


# Identity-keyed memo for rendered subtrees.  Expression nodes are frozen
# dataclasses, so a given node object always renders to the same text for a
# given dialect; mutation chains build new nodes around shared old subtrees,
# which makes re-rendering an extended chain mostly cache hits.  Strong refs
# to the keyed node prevent id() reuse; the whole table is cleared when it
# grows past the bound.
_RENDER_CACHE: dict[tuple[int, str], tuple[Expr, str]] = {}
_RENDER_CACHE_LIMIT = 4096


def render_expr(expr: Expr, dialect: str = SQLITE) -> str:
    """Render an expression tree as SQL text for *dialect*."""
    key = (id(expr), dialect)
    entry = _RENDER_CACHE.get(key)
    if entry is not None and entry[0] is expr:
        return entry[1]
    text = _render_expr(expr, dialect)
    if len(_RENDER_CACHE) >= _RENDER_CACHE_LIMIT:
        _RENDER_CACHE.clear()
    _RENDER_CACHE[key] = (expr, text)
    return text


def _render_expr(expr: Expr, dialect: str) -> str:
    if isinstance(expr, LiteralNode):
        return render_literal(expr.value, dialect)
    if isinstance(expr, ColumnNode):
        return expr.qualified
    if isinstance(expr, UnaryNode):
        inner = render_expr(expr.operand, dialect)
        # Always put a space after the operator: "--" would start a comment.
        return f"({expr.op.value} {inner})"
    if isinstance(expr, PostfixNode):
        inner = render_expr(expr.operand, dialect)
        return f"({inner} {_postfix_text(expr, dialect)})"
    if isinstance(expr, BinaryNode):
        left = render_expr(expr.left, dialect)
        right = render_expr(expr.right, dialect)
        return f"({left} {expr.op.value} {right})"
    if isinstance(expr, BetweenNode):
        head = render_expr(expr.operand, dialect)
        low = render_expr(expr.low, dialect)
        high = render_expr(expr.high, dialect)
        kw = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return f"({head} {kw} {low} AND {high})"
    if isinstance(expr, InListNode):
        head = render_expr(expr.operand, dialect)
        items = ", ".join(render_expr(item, dialect) for item in expr.items)
        kw = "NOT IN" if expr.negated else "IN"
        return f"({head} {kw} ({items}))"
    if isinstance(expr, CastNode):
        inner = render_expr(expr.operand, dialect)
        return f"CAST({inner} AS {expr.type_name})"
    if isinstance(expr, CollateNode):
        inner = render_expr(expr.operand, dialect)
        return f"({inner} COLLATE {expr.collation})"
    if isinstance(expr, CaseNode):
        return _render_case(expr, dialect)
    if isinstance(expr, FunctionNode):
        args = ", ".join(render_expr(arg, dialect) for arg in expr.args)
        return f"{expr.name}({args})"
    raise ValueError(f"cannot render node {expr!r}")


def _postfix_text(expr: PostfixNode, dialect: str) -> str:
    from repro.sqlast.nodes import PostfixOp

    if dialect != SQLITE and expr.op in (PostfixOp.ISNULL, PostfixOp.NOTNULL):
        # MySQL and PostgreSQL spell these with the IS keyword.
        return "IS NULL" if expr.op is PostfixOp.ISNULL else "IS NOT NULL"
    return expr.op.value


def _render_case(expr: CaseNode, dialect: str) -> str:
    parts = ["CASE"]
    if expr.operand is not None:
        parts.append(render_expr(expr.operand, dialect))
    for cond, result in expr.whens:
        parts.append(f"WHEN {render_expr(cond, dialect)}")
        parts.append(f"THEN {render_expr(result, dialect)}")
    if expr.else_ is not None:
        parts.append(f"ELSE {render_expr(expr.else_, dialect)}")
    parts.append("END")
    return f"({' '.join(parts)})"
