"""Tool-side schema model.

SQLancer queries the DBMS for schema state rather than tracking it
(paper §3.4) — our runner does verify relation existence through the
target's schema table — but the *generator* additionally keeps this
model of the tables it created: column affinities and collations feed
the exact interpreter, and strict dialects need column types to build
well-typed expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.interp.base import affinity_of_type_name
from repro.sqlast.nodes import ColumnNode


@dataclass
class ColumnModel:
    name: str
    type_name: Optional[str] = None
    collation: Optional[str] = None
    primary_key: bool = False
    unique: bool = False
    not_null: bool = False

    def affinity(self, dialect: str) -> Optional[str]:
        if dialect != "sqlite" or self.type_name is None:
            return None
        return affinity_of_type_name(self.type_name)

    def type_bucket(self, dialect: str) -> str:
        """Coarse type for strict generation: number/text/boolean/blob/any."""
        if self.type_name is None:
            return "any"
        upper = self.type_name.upper()
        if "BOOL" in upper:
            return "boolean"
        if any(k in upper for k in ("INT", "FLOAT", "DOUBLE", "REAL",
                                    "SERIAL", "NUMERIC", "DECIMAL")):
            return "number"
        if any(k in upper for k in ("TEXT", "CHAR", "CLOB", "VARCHAR")):
            return "text"
        if "BLOB" in upper or "BYTEA" in upper:
            return "blob"
        return "any"

    def column_node(self, table: str, dialect: str) -> ColumnNode:
        return ColumnNode(table=table, column=self.name,
                          collation=self.collation,
                          affinity=self.affinity(dialect))


@dataclass
class TableModel:
    name: str
    columns: list[ColumnModel] = field(default_factory=list)
    without_rowid: bool = False
    engine: Optional[str] = None
    inherits: Optional[str] = None
    is_view: bool = False

    def column(self, name: str) -> ColumnModel:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(name)


@dataclass
class SchemaModel:
    """All relations the generator has created in the current database."""

    dialect: str
    tables: list[TableModel] = field(default_factory=list)
    next_table_id: int = 0
    next_index_id: int = 0
    next_view_id: int = 0
    index_names: list[str] = field(default_factory=list)

    def base_tables(self) -> list[TableModel]:
        return [t for t in self.tables if not t.is_view]

    def relations(self) -> list[TableModel]:
        return list(self.tables)

    def table(self, name: str) -> TableModel:
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(name)

    def fresh_table_name(self) -> str:
        name = f"t{self.next_table_id}"
        self.next_table_id += 1
        return name

    def fresh_index_name(self) -> str:
        name = f"i{self.next_index_id}"
        self.next_index_id += 1
        return name

    def fresh_view_name(self) -> str:
        name = f"v{self.next_view_id}"
        self.next_view_id += 1
        return name
