"""Pivot row selection — step 2 of the paper's approach.

"We then select a random row from each of the tables, to which we refer
as the pivot row."  Rows are fetched from the system under test with
``SELECT * FROM t`` — the DBMS's own view of its state, exactly like
SQLancer queries state from the DBMS rather than tracking it (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adapters.base import DBMSConnection
from repro.core.schema import SchemaModel, TableModel
from repro.errors import DBError
from repro.rng import RandomSource
from repro.values import Value


@dataclass
class PivotRow:
    """One selected row per table, with a column environment for the
    oracle interpreter."""

    tables: list[TableModel]
    #: "t0.c0" -> stored Value, for every column of every pivot table.
    values: dict[str, Value] = field(default_factory=dict)
    #: table name -> the pivot row as fetched (tuple of Values).
    row_by_table: dict[str, tuple] = field(default_factory=dict)
    #: table name -> number of rows the table held at selection time.
    row_counts: dict[str, int] = field(default_factory=dict)

    @property
    def all_single_row(self) -> bool:
        """True when every pivot table has exactly one row — the regime
        where the paper partially tests aggregate functions (§3.2)."""
        return all(count == 1 for count in self.row_counts.values())


class PivotSelector:
    """Selects pivot rows through the target connection."""

    def __init__(self, connection: DBMSConnection, schema: SchemaModel,
                 rng: RandomSource):
        self.connection = connection
        self.schema = schema
        self.rng = rng

    def tables_with_rows(self, candidates: list[TableModel],
                         ) -> list[tuple[TableModel, list[tuple]]]:
        """Fetch all rows of each candidate; drops empty/unreadable ones."""
        out = []
        for table in candidates:
            try:
                rows = self.connection.execute(
                    f"SELECT * FROM {table.name}")
            except DBError:
                continue
            if rows and all(len(r) == len(table.columns) for r in rows):
                out.append((table, rows))
        return out

    def select(self, tables_rows: list[tuple[TableModel, list[tuple]]],
               ) -> PivotRow:
        """Pick one random row per table (paper step 2)."""
        pivot = PivotRow(tables=[t for t, _ in tables_rows])
        for table, rows in tables_rows:
            row = self.rng.choice(rows)
            pivot.row_by_table[table.name] = row
            pivot.row_counts[table.name] = len(rows)
            for column, value in zip(table.columns, row):
                pivot.values[f"{table.name}.{column.name}"] = value
        return pivot
