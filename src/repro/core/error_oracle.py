"""The error oracle (paper §3.3).

Random statement generation sometimes produces statements that
legitimately fail — "an INSERT might fail when a value already present
in a UNIQUE column is inserted again; preventing such an error would
require scanning every row".  Rather than preventing them, SQLancer
keeps a list of *expected* error messages per statement kind; anything
else indicates a bug.  Corruption reports ("malformed database disk
image") are always unexpected.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import DBError, DBTimeout

#: Message patterns that indicate corruption or internal inconsistency —
#: unconditionally a bug, whatever the statement (paper §3.3).
ALWAYS_UNEXPECTED = (
    r"malformed",
    r"disk image",
    r"corrupt",
    r"internal error",
    r"bitmapset",
    r"unexpected null value",
)

#: statement kind -> regexes of legitimate failures under random
#: generation.  Kinds are the leading keyword(s) of the statement.
_COMMON_DML_ERRORS = (
    # SQLite's INTEGER PRIMARY KEY (rowid alias) rejects non-integers.
    r"datatype mismatch",
    r"UNIQUE constraint failed",
    r"NOT NULL constraint failed",
    r"Duplicate entry",
    r"cannot be null",
    r"violates not-null constraint",
    r"duplicate key value",
    r"out of range",
    r"is of type",
    r"invalid input syntax",
    r"no such column",
    r"has no column",
    r"division by zero",
    r"operator does not exist",
    r"argument of WHERE must be type boolean",
    r"integer overflow",
    r"BIGINT value is out of range",
    r"values were supplied",
    r"values for",
    r"sum/avg requires numeric",
    r"Cannot add",
    r"cannot start a transaction",
    r"no transaction is active",
)

EXPECTED_ERRORS: dict[str, tuple[str, ...]] = {
    "INSERT": _COMMON_DML_ERRORS,
    "UPDATE": _COMMON_DML_ERRORS,
    "DELETE": _COMMON_DML_ERRORS,
    "ALTER": _COMMON_DML_ERRORS + (
        r"duplicate column name",
        r"already exists",
    ),
    "CREATE TABLE": (
        r"already exists",
        r"duplicate column name",
        r"PRIMARY KEY missing",
        r"multiple primary keys",
        r"no such table",          # INHERITS target vanished
        r"has different type",     # INHERITS column type mismatch
    ),
    "CREATE INDEX": _COMMON_DML_ERRORS + (
        r"already exists",
        r"no such table",
        r"no such collation",
        # Modern SQLite rejects LIKE in index expressions up front — a
        # consequence of the very bug this paper reported (Listing 9).
        # MiniDB models the 2019-era engine, which still accepted it.
        r"non-deterministic functions prohibited",
    ),
    "CREATE VIEW": (
        r"already exists",
        r"no such table",
        r"no such column",
        r"ambiguous column name",
        r"operator does not exist",
        r"argument of WHERE must be type boolean",
        r"division by zero",
    ),
    "CREATE STATISTICS": (
        r"already exist",
        r"no such table",
        r"no such column",
    ),
    "DROP": (r"no such", r"cannot drop", r"backing a constraint"),
    "SELECT": (
        # The synthesized query is validated by the exact interpreter
        # before being sent, so almost nothing is expected here.  The
        # exceptions are name-resolution failures from views left stale
        # by ALTER TABLE RENAME (corruption reports still dominate via
        # ALWAYS_UNEXPECTED, which is checked first).
        r"ambiguous column name",
        r"no such column",
        r"no such table",
        r"does not exist",
        # Runtime arithmetic errors: the synthesized expression is sound
        # on the *pivot* row, but strict dialects may still fail on other
        # rows of the scan (e.g. negating INT64_MIN) — a legitimate
        # error, exactly like the paper's expected-error handling.
        r"out of range",
        r"division by zero",
        r"integer overflow",
    ),
    "BEGIN": (r"within a transaction",),
    "COMMIT": (r"no transaction is active",),
    "ROLLBACK": (r"no transaction is active",),
    # Maintenance statements and options: failures are findings (the
    # paper found bugs precisely in REINDEX / VACUUM / REPAIR / CHECK /
    # SET), so the expected lists are nearly empty.  The exception is
    # the documented VACUUM-inside-transaction refusal.
    "VACUUM": (r"within a transaction", r"transaction block"),
    "REINDEX": (),
    "ANALYZE": (),
    "CHECK TABLE": (),
    "REPAIR TABLE": (),
    "DISCARD": (),
    "PRAGMA": (),
    "SET": (),
}


@dataclass(frozen=True)
class ErrorVerdict:
    expected: bool
    statement_kind: str
    message: str


class ErrorOracle:
    """Classifies engine errors as expected noise or findings.

    ``documented_quirks`` suppresses message patterns that the target's
    developers have explicitly documented as intended.  The canonical
    example is the paper's Listing 9: SQLite's
    ``malformed database schema ... non-deterministic functions
    prohibited in index expressions`` was reported by the paper, triaged
    as a *design* defect, and merely documented — modern SQLite still
    exhibits it, so a harness pointed at a real SQLite build expects it,
    while the MiniDB campaigns (which model the 2019 engine) count it.
    """

    def __init__(self, dialect: str,
                 documented_quirks: tuple[str, ...] = ()):
        self.dialect = dialect
        self.documented_quirks = documented_quirks

    def classify(self, sql: str, error: DBError) -> ErrorVerdict:
        kind = statement_kind(sql)
        message = error.message
        if isinstance(error, DBTimeout):
            # Watchdog expiry is an availability event, not a wrong-
            # result logic bug: never an error-oracle finding.  The
            # runner counts it in RunStatistics.timeouts, distinct from
            # expected_errors.
            return ErrorVerdict(True, kind, message)
        for pattern in self.documented_quirks:
            if re.search(pattern, message, re.IGNORECASE):
                return ErrorVerdict(True, kind, message)
        for pattern in ALWAYS_UNEXPECTED:
            if re.search(pattern, message, re.IGNORECASE):
                return ErrorVerdict(False, kind, message)
        for pattern in EXPECTED_ERRORS.get(kind, ()):
            if re.search(pattern, message, re.IGNORECASE):
                return ErrorVerdict(True, kind, message)
        return ErrorVerdict(False, kind, message)


#: The quirks a current SQLite build is documented to exhibit.
SQLITE3_DOCUMENTED_QUIRKS = (
    r"non-deterministic functions prohibited in index expressions",
)


def statement_kind(sql: str) -> str:
    """The leading keyword(s) that key the expected-error table."""
    words = sql.strip().upper().split()
    if not words:
        return "UNKNOWN"
    first = words[0]
    if first == "CREATE" and len(words) > 1:
        second = words[1]
        if second == "UNIQUE":
            return "CREATE INDEX"
        if second in ("TABLE", "INDEX", "VIEW", "STATISTICS"):
            return f"CREATE {second}"
        return "CREATE TABLE"
    if first in ("CHECK", "REPAIR") and len(words) > 1 and \
            words[1] == "TABLE":
        return f"{first} TABLE"
    if first in ("INSERT", "UPDATE", "DELETE", "ALTER", "SELECT", "DROP",
                 "VACUUM", "REINDEX", "ANALYZE", "DISCARD", "PRAGMA",
                 "SET", "BEGIN", "COMMIT", "ROLLBACK", "VALUES"):
        return first
    return "UNKNOWN"
