"""The paper's primary contribution: Pivoted Query Synthesis.

Steps (paper Figure 1):

1. generate a random database state — :mod:`repro.stategen`;
2. select a random *pivot row* from each table — :mod:`repro.core.pivot`;
3. generate random expressions over the schema (Algorithm 1) —
   :mod:`repro.core.exprgen`;
4. evaluate them on the pivot row with the exact interpreter
   (Algorithm 2, :mod:`repro.interp`) and *rectify* them to TRUE
   (Algorithm 3) — :mod:`repro.core.rectify`;
5. synthesize a query using the rectified conditions in WHERE/JOIN
   clauses — :mod:`repro.core.querygen`;
6. + 7. run the query and check the pivot row is contained —
   :mod:`repro.core.containment`.

The *error oracle* (§3.3) and crash handling live in
:mod:`repro.core.error_oracle`; the driving loop in
:mod:`repro.core.runner`; test-case reduction in
:mod:`repro.core.reducer`.
"""

from repro.core.containment import check_containment, containment_query
from repro.core.error_oracle import ErrorOracle
from repro.core.exprgen import ExpressionGenerator
from repro.core.pivot import PivotSelector, PivotRow
from repro.core.querygen import QueryGenerator, SynthesizedQuery
from repro.core.rectify import rectify_condition
from repro.core.reducer import TestCaseReducer
from repro.core.reports import BugReport, Oracle, TestCase
from repro.core.runner import PQSRunner, RunnerConfig
from repro.core.schema import ColumnModel, SchemaModel, TableModel

__all__ = [
    "BugReport",
    "ColumnModel",
    "ErrorOracle",
    "ExpressionGenerator",
    "Oracle",
    "PQSRunner",
    "PivotRow",
    "PivotSelector",
    "QueryGenerator",
    "RunnerConfig",
    "SchemaModel",
    "SynthesizedQuery",
    "TableModel",
    "TestCase",
    "TestCaseReducer",
    "check_containment",
    "containment_query",
    "rectify_condition",
]
