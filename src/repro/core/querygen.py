"""Query synthesis — step 5 of the paper's approach.

Rectified conditions go into WHERE and JOIN clauses of an otherwise
random query over the pivot tables.  The SELECT targets are either the
pivot tables' columns or random *expressions on columns* (the paper's
§3.4 extension: instead of checking that the pivot row is contained, we
check that the expressions' values on the pivot row are contained).
When every pivot table holds exactly one row, aggregate functions are
partially tested too (§3.2): for a single-row table the aggregate's
result is computable from the pivot row alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.exprgen import ExpressionGenerator
from repro.core.pivot import PivotRow
from repro.core.rectify import rectify_condition
from repro.interp.base import EvalError, Interpreter
from repro.rng import RandomSource
from repro.sqlast.nodes import Expr, FunctionNode
from repro.sqlast.render import render_expr
from repro.values import Value

#: Aggregates usable on single-row tables (their value equals the
#: expression's value on the pivot row, or 1 for COUNT).
_SINGLE_ROW_AGGREGATES = ("MIN", "MAX", "SUM", "COUNT", "AVG")


@dataclass
class SynthesizedQuery:
    """A query plus everything the containment check needs."""

    sql: str
    targets: list[Expr]
    expected: list[Value]
    table_names: list[str] = field(default_factory=list)
    distinct: bool = False
    join_count: int = 0
    uses_aggregates: bool = False
    #: Negative mode (§7 future work): the condition is FALSE on the
    #: pivot row, so ``expected`` must NOT be in the result set.
    negative: bool = False
    #: Query carries ORDER BY — INTERSECT-mode checking must be skipped
    #: (ORDER BY binds to the whole compound and would be rejected).
    has_order_by: bool = False


class QueryGenerator:
    """Builds pivot-fetching queries from rectified conditions."""

    def __init__(self, generator: ExpressionGenerator,
                 interpreter: Interpreter, rng: RandomSource,
                 expression_targets_probability: float = 0.4,
                 aggregate_probability: float = 0.15,
                 groupby_probability: float = 0.15,
                 rectify: bool = True):
        self.generator = generator
        self.interpreter = interpreter
        self.rng = rng
        self.expression_targets_probability = expression_targets_probability
        self.aggregate_probability = aggregate_probability
        self.groupby_probability = groupby_probability
        #: Rectification can be disabled for the ablation benchmark —
        #: doing so makes the containment oracle unsound (DESIGN.md §4.1).
        self.rectify = rectify

    # -- public -----------------------------------------------------------
    def synthesize(self, pivot: PivotRow, max_attempts: int = 50,
                   ) -> SynthesizedQuery:
        """Generate a query that must fetch the pivot row.

        Retries generation when the strict-dialect interpreter rejects a
        candidate expression (ill-typed / division by zero), mirroring
        how SQLancer constrains generation per dialect.
        """
        self._bind_columns(pivot)
        for _ in range(max_attempts):
            try:
                return self._synthesize_once(pivot)
            except EvalError:
                continue
        raise EvalError("could not synthesize a well-typed query")

    def synthesize_negative(self, pivot: PivotRow,
                            max_attempts: int = 50) -> SynthesizedQuery:
        """A query whose condition is FALSE on the pivot row (§7).

        Callers must ensure the pivot row's values are unique within its
        table; otherwise an equal-valued sibling row would legitimately
        appear in the result set.  Single-table, full-column projection
        only — the narrowest fragment in which non-containment is sound.
        """
        from repro.core.rectify import rectify_condition_to_false

        self._bind_columns(pivot)
        table = pivot.tables[0]
        for _ in range(max_attempts):
            try:
                condition = self.generator.condition()
                condition = rectify_condition_to_false(
                    condition, self.interpreter, pivot.values)
            except EvalError:
                continue
            targets, expected = self._column_targets(pivot)
            sql = self._render(targets, [table.name], [], [], condition,
                               False, self.generator.dialect.name)
            return SynthesizedQuery(sql=sql, targets=targets,
                                    expected=expected,
                                    table_names=[table.name],
                                    negative=True)
        raise EvalError("could not synthesize a well-typed query")

    # -- internals -----------------------------------------------------------
    def _bind_columns(self, pivot: PivotRow) -> None:
        columns = []
        for table in pivot.tables:
            for col in table.columns:
                node = col.column_node(table.name,
                                       self.generator.dialect.name)
                columns.append((node, col.type_bucket(
                    self.generator.dialect.name)))
        self.generator.set_columns(columns, pivot.values)

    def _synthesize_once(self, pivot: PivotRow) -> SynthesizedQuery:
        dialect = self.generator.dialect.name
        condition = self.generator.condition()
        if self.rectify:
            condition = rectify_condition(condition, self.interpreter,
                                          pivot.values)
        else:
            # Ablation mode: use the raw random condition (paper's
            # baseline-free soundness argument, measured in benches).
            self.interpreter.evaluate_bool(condition, pivot.values)

        join_conditions: list[Expr] = []
        join_tables: list[str] = []
        table_names = [t.name for t in pivot.tables]
        use_join = len(table_names) > 1 and self.rng.flip(0.35)
        if use_join:
            # The last table becomes an explicit JOIN with a rectified ON.
            join_tables = [table_names[-1]]
            table_names = table_names[:-1]
            on = self.generator.condition()
            if self.rectify:
                on = rectify_condition(on, self.interpreter, pivot.values)
            join_conditions.append(on)

        use_aggregates = (pivot.all_single_row
                          and self.rng.flip(self.aggregate_probability))
        group_by: list[Expr] = []
        if use_aggregates:
            targets, expected = self._aggregate_targets(pivot)
        elif self.rng.flip(self.groupby_probability):
            # GROUP BY over exactly the projected columns: every distinct
            # projected tuple (the pivot's included) must appear once.
            targets, expected = self._groupby_targets(pivot)
            group_by = list(targets)
        elif self.rng.flip(self.expression_targets_probability):
            targets, expected = self._expression_targets(pivot)
        else:
            targets, expected = self._column_targets(pivot)

        distinct = self.rng.flip(0.25) and not group_by
        order_by: list[Expr] = []
        if targets and not use_aggregates and self.rng.flip(0.2):
            # ORDER BY never affects containment; it exercises the
            # engine's sort path ("we randomly select appropriate
            # keywords when generating these queries", §3.2).
            order_by = [self.rng.choice(targets)]
        sql = self._render(targets, table_names, join_tables,
                           join_conditions, condition, distinct, dialect,
                           group_by, order_by)
        return SynthesizedQuery(sql=sql, targets=targets,
                                expected=expected,
                                table_names=[t.name for t in pivot.tables],
                                distinct=distinct,
                                join_count=len(join_tables),
                                uses_aggregates=use_aggregates,
                                has_order_by=bool(order_by))

    def _column_targets(self, pivot: PivotRow,
                        ) -> tuple[list[Expr], list[Value]]:
        targets: list[Expr] = []
        expected: list[Value] = []
        for table in pivot.tables:
            for col in table.columns:
                node = col.column_node(table.name,
                                       self.generator.dialect.name)
                targets.append(node)
                expected.append(pivot.values[f"{table.name}.{col.name}"])
        return targets, expected

    def _groupby_targets(self, pivot: PivotRow,
                         ) -> tuple[list[Expr], list[Value]]:
        """A random column subset, projected *and* grouped by.

        Sound because grouping by exactly the projected columns means
        every distinct projected tuple appears once; the containment
        check compares text columns under their collations, so a
        case-variant group representative still matches the pivot.
        (GROUP BY is beyond the paper's tested fragment; this is the
        soundness argument for adding it.)
        """
        table = self.rng.choice(pivot.tables)
        candidates = table.columns
        count = self.rng.int_between(1, len(candidates))
        columns = self.rng.sample(candidates, count)
        targets = []
        expected = []
        for col in columns:
            targets.append(col.column_node(table.name,
                                           self.generator.dialect.name))
            expected.append(pivot.values[f"{table.name}.{col.name}"])
        return targets, expected

    def _expression_targets(self, pivot: PivotRow,
                            ) -> tuple[list[Expr], list[Value]]:
        """Expressions-on-columns extension (§3.4): project random
        expressions and expect their pivot-row values."""
        count = self.rng.int_between(1, 3)
        targets = []
        expected = []
        for _ in range(count):
            expr = self.generator.scalar()
            value = self.interpreter.evaluate(expr, pivot.values)
            targets.append(expr)
            expected.append(value)
        return targets, expected

    def _aggregate_targets(self, pivot: PivotRow,
                           ) -> tuple[list[Expr], list[Value]]:
        """Aggregates over single-row tables (§3.2): the aggregate of a
        one-row group equals the aggregated expression's value."""
        table = self.rng.choice(pivot.tables)
        column = self.rng.choice(table.columns)
        node = column.column_node(table.name, self.generator.dialect.name)
        name = self.rng.choice(_SINGLE_ROW_AGGREGATES)
        if self.generator.dialect.boolean_root and name in ("SUM", "AVG") \
                and column.type_bucket("postgres") != "number":
            # PostgreSQL has no sum(boolean)/sum(text); stay well-typed.
            name = self.rng.choice(("MIN", "MAX", "COUNT"))
        call = FunctionNode(name, (node,))
        value = pivot.values[f"{table.name}.{column.name}"]
        expected = self._single_row_aggregate(name, value)
        return [call], [expected]

    def _single_row_aggregate(self, name: str, value: Value) -> Value:
        if name == "COUNT":
            return Value.integer(0 if value.is_null else 1)
        if value.is_null:
            return Value.null()
        if name in ("MIN", "MAX"):
            return value
        # SUM / AVG coerce numerically; reuse the dialect's own rules.
        dialect = self.generator.dialect.name
        if dialect == "sqlite":
            from repro.interp.sqlite_sem import to_numeric

            num = to_numeric(value)
        elif dialect == "mysql":
            from repro.interp.mysql_sem import to_number

            num = to_number(value)
        else:
            from repro.values import SQLType

            if value.t not in (SQLType.INTEGER, SQLType.REAL):
                raise EvalError("sum/avg requires numeric input")
            num = value.v
        assert num is not None
        if name == "AVG":
            return Value.real(float(num))
        if isinstance(num, float):
            return Value.real(num)
        return Value.integer(int(num))

    def _render(self, targets: list[Expr], table_names: list[str],
                join_tables: list[str], join_conditions: list[Expr],
                condition: Expr, distinct: bool, dialect: str,
                group_by: Optional[list[Expr]] = None,
                order_by: Optional[list[Expr]] = None) -> str:
        parts = ["SELECT"]
        if distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(render_expr(t, dialect) for t in targets))
        parts.append("FROM")
        parts.append(", ".join(table_names))
        for table, on in zip(join_tables, join_conditions):
            parts.append(f"INNER JOIN {table} ON "
                         f"{render_expr(on, dialect)}")
        parts.append("WHERE")
        parts.append(render_expr(condition, dialect))
        if group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(render_expr(e, dialect)
                                   for e in group_by))
        if order_by:
            parts.append("ORDER BY")
            directions = [" DESC" if self.rng.flip() else ""
                          for _ in order_by]
            parts.append(", ".join(
                render_expr(e, dialect) + suffix
                for e, suffix in zip(order_by, directions)))
        return " ".join(parts)
