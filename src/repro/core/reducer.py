"""Test-case reduction.

"SQLancer automatically deletes SQL statements that are unnecessary to
reproduce a bug" (§4.1) — the reduced-statement counts are what the
paper's Figure 2 (test-case LOC CDF) and Figure 3 (statement
distribution) measure.

The reducer is classic ddmin over the statement list: the final
statement (the failing query / erroring statement) is always kept; the
prefix is minimized against a caller-supplied predicate that replays the
candidate and reports whether the failure still manifests.
"""

from __future__ import annotations

from typing import Callable

from repro.core.reports import TestCase
from repro.errors import ReductionError

#: The predicate: does this candidate still exhibit the failure?
FailurePredicate = Callable[[TestCase], bool]


class TestCaseReducer:
    """Minimizes a failing statement sequence with delta debugging."""

    #: Not a pytest class, despite the name.
    __test__ = False

    def __init__(self, still_fails: FailurePredicate,
                 max_replays: int = 2000):
        self.still_fails = still_fails
        self.max_replays = max_replays
        self.replays = 0

    def reduce(self, test_case: TestCase) -> TestCase:
        """Return a 1-minimal variant of *test_case*.

        Raises :class:`ReductionError` if the input does not fail to
        begin with (a reducer bug or a flaky failure — both worth
        surfacing loudly rather than silently returning garbage).
        """
        if not self._check(test_case):
            raise ReductionError(
                "test case does not reproduce its failure")
        prefix = list(test_case.statements[:-1])
        final = test_case.statements[-1]
        prefix = self._ddmin(prefix, final, test_case)
        prefix = self._one_by_one(prefix, final, test_case)
        return TestCase(statements=prefix + [final],
                        expected_row=test_case.expected_row,
                        dialect=test_case.dialect)

    # -- internals -----------------------------------------------------------
    def _check(self, candidate: TestCase) -> bool:
        if self.replays >= self.max_replays:
            return False
        self.replays += 1
        return self.still_fails(candidate)

    def _candidate(self, prefix: list[str], final: str,
                   template: TestCase) -> TestCase:
        return TestCase(statements=prefix + [final],
                        expected_row=template.expected_row,
                        dialect=template.dialect)

    def _ddmin(self, prefix: list[str], final: str,
               template: TestCase) -> list[str]:
        granularity = 2
        while len(prefix) >= 2:
            chunk = max(1, len(prefix) // granularity)
            reduced = False
            start = 0
            while start < len(prefix):
                candidate = prefix[:start] + prefix[start + chunk:]
                if self._check(self._candidate(candidate, final,
                                               template)):
                    prefix = candidate
                    reduced = True
                    # Restart at the same granularity on the smaller list.
                    granularity = max(2, granularity - 1)
                    start = 0
                    continue
                start += chunk
            if not reduced:
                if granularity >= len(prefix):
                    break
                granularity = min(len(prefix), granularity * 2)
        return prefix

    def _one_by_one(self, prefix: list[str], final: str,
                    template: TestCase) -> list[str]:
        """Final pass: try deleting each remaining statement singly."""
        index = 0
        while index < len(prefix):
            candidate = prefix[:index] + prefix[index + 1:]
            if self._check(self._candidate(candidate, final, template)):
                prefix = candidate
            else:
                index += 1
        return prefix
