"""Containment checking — steps 6 and 7 of the paper's approach.

Two modes, both from the paper:

* **client-side**: fetch the query's result set and scan for the pivot
  (expected) row, comparing values with the dialect's row equality;
* **INTERSECT**: "we instead construct the query so that it checks for
  containment" (§3.2) — ``SELECT <pivot literals> INTERSECT <query>``
  returns a row iff the pivot row is contained.  (The MySQL dialect
  predates INTERSECT support, so it always checks client-side.)

Two subtleties make the check exact:

* **collations** — DISTINCT/GROUP BY deduplicate using each column's
  collating sequence, so the surviving representative of the pivot row
  may be a case/padding variant (``'AB'`` for pivot ``'ab'`` under
  NOCASE).  The client-side comparison therefore uses each target
  expression's collation, exactly like INTERSECT does engine-side.
* **extreme REALs** — SQLite's text-to-float parser can be one ulp off
  for literals with extreme exponents, so INTERSECT mode (which renders
  the pivot values as literals) falls back to the client-side check for
  such values.
"""

from __future__ import annotations

from repro.adapters.base import DBMSConnection
from repro.core.querygen import SynthesizedQuery
from repro.interp.base import Semantics, expr_collation
from repro.sqlast.render import render_literal
from repro.values import SQLType, Value


def check_containment(connection: DBMSConnection, query: SynthesizedQuery,
                      semantics: Semantics,
                      use_intersect: bool = False) -> bool:
    """True when the pivot row is contained in the query's result set."""
    if use_intersect and connection.dialect != "mysql" and \
            not query.has_order_by and \
            all(_intersect_safe(v) for v in query.expected):
        intersect_sql = containment_query(query, connection.dialect)
        rows = connection.execute(intersect_sql)
        return len(rows) > 0
    rows = connection.execute(query.sql)
    return rows_contain_pivot(rows, query, semantics, connection.dialect)


def rows_contain_pivot(rows: list, query: SynthesizedQuery,
                       semantics: Semantics, dialect: str) -> bool:
    """Client-side pivot check over already-fetched *rows*.

    The multi-plan oracle (:mod:`repro.multiplan`) uses this to
    arbitrate a plan divergence: each forced plan's result set is tested
    against the interpreter-computed pivot row without re-executing the
    query."""
    collations = _target_collations(query, dialect)
    return any(_row_matches(row, query.expected, semantics, collations)
               for row in rows)


def containment_query(query: SynthesizedQuery, dialect: str) -> str:
    """Render the INTERSECT form of the containment check."""
    literals = ", ".join(render_literal(v, dialect)
                         for v in query.expected)
    return f"SELECT {literals} INTERSECT {query.sql}"


def _target_collations(query: SynthesizedQuery,
                       dialect: str) -> list[str | None]:
    if dialect != "sqlite":
        return [None] * len(query.expected)
    out = []
    for target in query.targets:
        name, _explicit = expr_collation(target)
        out.append(name)
    # Aggregate/expression targets may not line up 1:1 in odd cases;
    # pad conservatively with BINARY.
    while len(out) < len(query.expected):
        out.append(None)
    return out


def _intersect_safe(v: Value) -> bool:
    """Can *v* round-trip through a rendered SQL literal exactly?"""
    if _is_nan(v):
        return False
    if v.t is SQLType.REAL:
        magnitude = abs(float(v.v))
        if magnitude != 0.0 and not (1e-200 <= magnitude <= 1e200):
            # sqlite3AtoF is not correctly rounded out here.
            return False
    return True


def _is_nan(v: Value) -> bool:
    return isinstance(v.v, float) and v.v != v.v


def _row_matches(row: tuple, expected: list[Value], semantics: Semantics,
                 collations: list[str | None]) -> bool:
    if len(row) != len(expected):
        return False
    for got, want, collation in zip(row, expected, collations):
        if collation not in (None, "BINARY") and \
                got.t is SQLType.TEXT and want.t is SQLType.TEXT:
            from repro.interp.sqlite_sem import storage_compare

            if storage_compare(got, want, collation) != 0:
                return False
            continue
        if not semantics.values_equal(got, want):
            return False
    return True
