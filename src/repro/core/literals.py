"""Random literal generation, per dialect and (for strict dialects) type.

Literal pools are biased toward the values the paper's bug-triggering
test cases used: boundary integers (TINYINT edges, INT_MAX, int64
extremes), small doubles like 0.5 (the MySQL TEXT-boolean bug), strings
with case variants, leading/trailing spaces (NOCASE/RTRIM), LIKE
wildcards, and NULL with high probability — "most bugs were found with a
low number of rows" containing boundary values.
"""

from __future__ import annotations

from repro.rng import RandomSource
from repro.sqlast.nodes import LiteralNode
from repro.values import NULL, Value

INTEGER_POOL = [0, 1, -1, 2, 3, 10, 100, 127, -128, 128, 255, 256,
                32767, -32768, 2**31 - 1, -(2**31), 2**31,
                2**63 - 1, -(2**63), 2035382037, 2851427734582196970]
REAL_POOL = [0.0, 0.5, -0.5, 1.5, -1.5, 123.25, 1e10, -1e10, 1e-3,
             9e99, -9e99]
TEXT_POOL = ["", "a", "A", "b", "ab", "aB", "Ab", "abc", "5abc", "./",
             "1.0", "0.5", " 12 ", "%", "a%", "_", "*", "9e99", "-1",
             "u", "  a", "a  ", " a", "  b", "b ", "B", "z"]
BLOB_POOL = [b"", b"a", b"ab", b"AB", b"zz", b"12"]
#: Case-collision-dense pool: values equal under NOCASE but distinct
#: under BINARY, plus padding variants for RTRIM.  The paper's collation
#: bugs (Listings 4 and 5) need exactly such near-duplicate data.
CASE_PAIR_POOL = ["a", "A", "b", "B", "ab", "AB", "aB", "Ab",
                  "a ", "a  ", " a", "b ", "B  "]


class LiteralGenerator:
    """Draws literal nodes appropriate for a dialect and type bucket."""

    def __init__(self, dialect_name: str, rng: RandomSource):
        self.dialect = dialect_name
        self.rng = rng

    def any_literal(self, null_probability: float = 0.15) -> LiteralNode:
        if self.rng.flip(null_probability):
            return LiteralNode(NULL)
        bucket = self.rng.choice(self._buckets())
        return self.typed_literal(bucket, null_probability=0.0)

    def typed_literal(self, bucket: str,
                      null_probability: float = 0.15) -> LiteralNode:
        """A literal in the coarse type *bucket* (number/text/blob/boolean)."""
        if self.rng.flip(null_probability):
            return LiteralNode(NULL)
        if bucket == "number":
            if self.rng.flip(0.3):
                return LiteralNode(Value.real(self._real()))
            return LiteralNode(Value.integer(self._integer()))
        if bucket == "text":
            return LiteralNode(Value.text(self._text()))
        if bucket == "blob":
            return LiteralNode(Value.blob(self.rng.choice(BLOB_POOL)))
        if bucket == "boolean":
            return LiteralNode(Value.boolean(self.rng.flip()))
        if self.dialect == "postgres":
            # 'any' in a strict dialect: favour numbers and text.
            bucket = self.rng.choice(["number", "text", "boolean"])
            return self.typed_literal(bucket, null_probability=0.0)
        bucket = self.rng.choice(self._buckets())
        return self.typed_literal(bucket, null_probability=0.0)

    def _buckets(self) -> list[str]:
        if self.dialect == "postgres":
            return ["number", "text", "boolean"]
        return ["number", "number", "text", "text", "blob"]

    def _integer(self) -> int:
        if self.rng.flip(0.6):
            return self.rng.choice(INTEGER_POOL)
        return self.rng.int_between(-1000, 1000)

    def _real(self) -> float:
        if self.rng.flip(0.6):
            return self.rng.choice(REAL_POOL)
        return round(self.rng.random() * 200 - 100, 3)

    def _text(self) -> str:
        if self.rng.flip(0.35):
            return self.rng.choice(CASE_PAIR_POOL)
        if self.rng.flip(0.7):
            return self.rng.choice(TEXT_POOL)
        return self.rng.short_text()

    def insert_value(self, column_type: str | None,
                     null_probability: float = 0.2) -> LiteralNode:
        """A literal to INSERT into a column of the given declared type.

        For the dynamically-typed dialects this intentionally draws from
        *all* buckets regardless of the declared type — storing
        ill-typed values in typed columns is exactly how the paper found
        SQLite's type-flexibility bugs (§4.4).
        """
        if self.rng.flip(null_probability):
            return LiteralNode(NULL)
        if self.dialect == "postgres":
            bucket = _pg_bucket(column_type)
            return self.typed_literal(bucket, null_probability=0.0)
        if self.dialect == "mysql" and self.rng.flip(0.7):
            bucket = _mysql_bucket(column_type)
            return self.typed_literal(bucket, null_probability=0.0)
        return self.any_literal(null_probability=0.0)


def _pg_bucket(column_type: str | None) -> str:
    upper = (column_type or "TEXT").upper()
    if "BOOL" in upper:
        return "boolean"
    if "TEXT" in upper or "CHAR" in upper:
        return "text"
    if "BYTEA" in upper:
        return "blob"
    return "number"


def _mysql_bucket(column_type: str | None) -> str:
    upper = (column_type or "INT").upper()
    if "TEXT" in upper or "CHAR" in upper:
        return "text"
    if "BLOB" in upper:
        return "blob"
    return "number"
