"""Bug reports, test cases, and run statistics."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Oracle(enum.Enum):
    """Which oracle detected a finding (paper Table 3's three columns)."""

    CONTAINMENT = "contains"
    ERROR = "error"
    CRASH = "segfault"


@dataclass
class TestCase:
    """A replayable sequence of SQL statements.

    The last statement is the one that exposes the finding: the
    synthesized query for containment findings, the erroring/crashing
    statement otherwise.
    """

    #: Not a pytest class, despite the name.
    __test__ = False

    statements: list[str]
    #: For containment findings: the literal pivot values the final
    #: query must contain (rendered per dialect by the reducer/replayer).
    expected_row: Optional[list] = None
    dialect: str = "sqlite"

    @property
    def loc(self) -> int:
        """Statement count — the 'LOC of the reduced test case' metric
        behind the paper's Figure 2."""
        return len(self.statements)

    def render(self) -> str:
        return ";\n".join(self.statements) + ";"


@dataclass
class BugReport:
    """One finding, as the campaign records it."""

    oracle: Oracle
    dialect: str
    test_case: TestCase
    message: str = ""
    seed: int = 0
    #: Ground-truth attribution: ids of injected defects that reproduce
    #: this test case (filled by the campaign's attribution pass).
    attributed_bugs: list[str] = field(default_factory=list)
    #: Table 2 status taxonomy: fixed / verified / docs / intended /
    #: duplicate.
    triage: str = "verified"
    reduced: bool = False


@dataclass
class RunStatistics:
    """Counters for throughput and distribution benchmarks."""

    databases: int = 0
    statements: int = 0
    queries: int = 0
    pivots: int = 0
    expected_errors: int = 0
    reports: list[BugReport] = field(default_factory=list)

    def merge(self, other: "RunStatistics") -> None:
        self.databases += other.databases
        self.statements += other.statements
        self.queries += other.queries
        self.pivots += other.pivots
        self.expected_errors += other.expected_errors
        self.reports.extend(other.reports)
