"""Bug reports, test cases, and run statistics.

Reports and test cases serialize to plain JSON (``to_json`` /
``from_json``) so a campaign can journal findings as it runs and a
``--resume`` continuation can reload them byte-for-byte.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.values import SQLType, Value


def value_to_json(value: Value) -> dict:
    """Encode a :class:`~repro.values.Value` as a JSON-safe dict.

    BLOBs are hex-encoded; every other payload is a native JSON scalar
    (Python's ``json`` round-trips ``inf``/``nan`` reals natively).
    """
    if value.t is SQLType.BLOB:
        return {"t": value.t.value, "v": value.v.hex()}
    return {"t": value.t.value, "v": value.v}


def value_from_json(data: dict) -> Value:
    t = SQLType(data["t"])
    if t is SQLType.BLOB:
        return Value.blob(bytes.fromhex(data["v"]))
    if t is SQLType.REAL:
        # JSON integers (e.g. a journaled 2.0 written as 2) must come
        # back as the REAL they were.
        return Value(t, float(data["v"]))
    return Value(t, data["v"])


class Oracle(enum.Enum):
    """Which oracle detected a finding (paper Table 3's three columns)."""

    CONTAINMENT = "contains"
    ERROR = "error"
    CRASH = "segfault"
    #: Multi-plan differential execution (repro.multiplan): two forced
    #: plans of the same query returned different row multisets.
    MULTIPLAN = "multiplan"


@dataclass
class TestCase:
    """A replayable sequence of SQL statements.

    The last statement is the one that exposes the finding: the
    synthesized query for containment findings, the erroring/crashing
    statement otherwise.
    """

    #: Not a pytest class, despite the name.
    __test__ = False

    statements: list[str]
    #: For containment findings: the literal pivot values the final
    #: query must contain (rendered per dialect by the reducer/replayer).
    expected_row: Optional[list] = None
    dialect: str = "sqlite"

    @property
    def loc(self) -> int:
        """Statement count — the 'LOC of the reduced test case' metric
        behind the paper's Figure 2."""
        return len(self.statements)

    def render(self) -> str:
        return ";\n".join(self.statements) + ";"

    def to_json(self) -> dict:
        out: dict = {"statements": list(self.statements),
                     "dialect": self.dialect}
        if self.expected_row is not None:
            out["expected_row"] = [value_to_json(v)
                                   for v in self.expected_row]
        return out

    @staticmethod
    def from_json(data: dict) -> "TestCase":
        expected = data.get("expected_row")
        return TestCase(
            statements=list(data["statements"]),
            expected_row=(None if expected is None
                          else [value_from_json(v) for v in expected]),
            dialect=data.get("dialect", "sqlite"))


@dataclass
class BugReport:
    """One finding, as the campaign records it."""

    oracle: Oracle
    dialect: str
    test_case: TestCase
    message: str = ""
    seed: int = 0
    #: Ground-truth attribution: ids of injected defects that reproduce
    #: this test case (filled by the campaign's attribution pass).
    attributed_bugs: list[str] = field(default_factory=list)
    #: Table 2 status taxonomy: fixed / verified / docs / intended /
    #: duplicate.
    triage: str = "verified"
    reduced: bool = False
    #: Multi-plan findings only: one entry per distinct executed plan —
    #: ``{"hints": <PlannerHints.as_dict()>, "fingerprint": str,
    #: "rows": int, "digest": str, "deviant": bool}``.  ``None`` for
    #: every other oracle, and omitted from the JSON form when unset so
    #: pre-multiplan journals stay byte-identical.
    plan_results: Optional[list[dict]] = None

    def to_json(self) -> dict:
        out = {"oracle": self.oracle.value, "dialect": self.dialect,
               "test_case": self.test_case.to_json(),
               "message": self.message, "seed": self.seed,
               "attributed_bugs": list(self.attributed_bugs),
               "triage": self.triage, "reduced": self.reduced}
        if self.plan_results is not None:
            out["plan_results"] = [dict(entry)
                                   for entry in self.plan_results]
        return out

    @staticmethod
    def from_json(data: dict) -> "BugReport":
        plans = data.get("plan_results")
        return BugReport(
            oracle=Oracle(data["oracle"]), dialect=data["dialect"],
            test_case=TestCase.from_json(data["test_case"]),
            message=data.get("message", ""), seed=data.get("seed", 0),
            attributed_bugs=list(data.get("attributed_bugs", [])),
            triage=data.get("triage", "verified"),
            reduced=data.get("reduced", False),
            plan_results=(None if plans is None
                          else [dict(entry) for entry in plans]))

    def fingerprint(self) -> str:
        """Stable content hash for triage dedup: two findings with the
        same oracle and (reduced) statement sequence are one bug however
        many rounds rediscovered it.  Seed and message are excluded —
        they vary per discovery, not per defect."""
        body = "\x1f".join([self.oracle.value, self.dialect,
                            *self.test_case.statements])
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        return digest[:12]


@dataclass
class RunStatistics:
    """Counters for throughput and distribution benchmarks."""

    databases: int = 0
    statements: int = 0
    queries: int = 0
    pivots: int = 0
    expected_errors: int = 0
    #: Watchdog expirations — counted apart from expected_errors because
    #: a hang is an availability event, not an error-oracle outcome.
    timeouts: int = 0
    #: Summed per-round wall clock (busy time, not elapsed: parallel
    #: workers' rounds overlap, so this can exceed wall time).
    seconds: float = 0.0
    #: Rounds retired to quarantine after exhausting their retry
    #: threshold (supervised journaled campaigns only).
    quarantined_rounds: int = 0
    #: Multi-plan oracle activity (zero unless ``--multiplan`` is on).
    multiplan_queries: int = 0
    multiplan_plans: int = 0
    multiplan_divergences: int = 0
    multiplan_forced_failures: int = 0
    #: Optimizer observatory (zero/empty unless ``--plan-timing``):
    #: timed query count, flagged PlanRegression records, and the raw
    #: per-round outcome dicts the TimingArchive is rebuilt from.
    plantime_queries: int = 0
    plan_regressions: list[dict] = field(default_factory=list)
    plantime_outcomes: list[dict] = field(default_factory=list)
    reports: list[BugReport] = field(default_factory=list)

    @property
    def queries_per_second(self) -> float:
        return self.queries / self.seconds if self.seconds > 0 else 0.0

    @property
    def statements_per_second(self) -> float:
        return self.statements / self.seconds if self.seconds > 0 else 0.0

    def absorb_multiplan(self, outcome: dict) -> None:
        """Fold one round's multi-plan outcome dict (the shape
        :meth:`repro.multiplan.oracle.MultiPlanOracle.take_round_outcome`
        produces and journals carry) into these counters."""
        if not outcome:
            return
        self.multiplan_queries += outcome.get("queries", 0)
        self.multiplan_divergences += outcome.get("divergences", 0)
        self.multiplan_forced_failures += outcome.get(
            "forced_failures", 0)
        for plans, count in outcome.get("plans", {}).items():
            self.multiplan_plans += int(plans) * count

    def absorb_plantime(self, outcome: dict) -> None:
        """Fold one round's plan-timing outcome dict (the shape
        :meth:`repro.plantime.collector.PlanTimer.take_round_outcome`
        produces and journals carry) into these counters.  The outcome
        itself is retained so archives can be rebuilt identically from
        live rounds, journal replays, and parallel-worker merges."""
        if not outcome:
            return
        self.plantime_queries += outcome.get("timed", 0)
        self.plan_regressions.extend(
            dict(r) for r in outcome.get("regressions", ()))
        self.plantime_outcomes.append(outcome)

    def merge(self, other: "RunStatistics") -> None:
        self.databases += other.databases
        self.statements += other.statements
        self.queries += other.queries
        self.pivots += other.pivots
        self.expected_errors += other.expected_errors
        self.timeouts += other.timeouts
        self.seconds += other.seconds
        self.quarantined_rounds += other.quarantined_rounds
        self.multiplan_queries += other.multiplan_queries
        self.multiplan_plans += other.multiplan_plans
        self.multiplan_divergences += other.multiplan_divergences
        self.multiplan_forced_failures += other.multiplan_forced_failures
        self.plantime_queries += other.plantime_queries
        self.plan_regressions.extend(other.plan_regressions)
        self.plantime_outcomes.extend(other.plantime_outcomes)
        self.reports.extend(other.reports)
