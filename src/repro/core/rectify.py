"""Expression rectification — the paper's Algorithm 3.

Given a random condition and its ternary value on the pivot row:

* TRUE  → use the expression as-is;
* FALSE → wrap in ``NOT``;
* NULL  → append ``ISNULL``.

The result is guaranteed TRUE for the pivot row, so a query filtering on
it must fetch the pivot row.  The paper notes the same step generalizes
to other logic systems (e.g. four-valued) by adjusting the mapping.
"""

from __future__ import annotations

from repro.interp.base import Interpreter, Row, Ternary
from repro.sqlast.nodes import Expr, PostfixNode, PostfixOp, UnaryNode, UnaryOp


def rectify_condition(expr: Expr, interpreter: Interpreter,
                      pivot_row: Row) -> Expr:
    """Return a variant of *expr* that evaluates to TRUE on *pivot_row*.

    May raise :class:`repro.interp.EvalError` for strict dialects when
    the random expression is ill-typed; callers discard and redraw.
    """
    outcome = interpreter.evaluate_bool(expr, pivot_row)
    return apply_rectification(expr, outcome)


def apply_rectification(expr: Expr, outcome: Ternary) -> Expr:
    if outcome is True:
        return expr
    if outcome is False:
        return UnaryNode(UnaryOp.NOT, expr)
    return PostfixNode(PostfixOp.ISNULL, expr)


def verify_rectified(expr: Expr, interpreter: Interpreter,
                     pivot_row: Row) -> bool:
    """Sanity check used by tests and the paranoid runner mode."""
    return interpreter.evaluate_bool(expr, pivot_row) is True


def rectify_condition_to_false(expr: Expr, interpreter: Interpreter,
                               pivot_row: Row) -> Expr:
    """Rectify *expr* to FALSE on the pivot row.

    The paper's §7 future-work extension: "we could also generate
    conditions and check that the pivot row is NOT contained in the
    result set, which might uncover additional bugs."  The mapping is
    the dual of Algorithm 3:

    * FALSE → as-is;
    * TRUE  → wrap in ``NOT``;
    * NULL  → append ``NOTNULL`` (NULL NOTNULL is FALSE).
    """
    outcome = interpreter.evaluate_bool(expr, pivot_row)
    if outcome is False:
        return expr
    if outcome is True:
        return UnaryNode(UnaryOp.NOT, expr)
    return PostfixNode(PostfixOp.NOTNULL, expr)
