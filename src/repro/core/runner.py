"""The PQS driving loop — paper Figure 1, steps 1 through 7.

One *database round*: generate random state (step 1), then repeatedly
select pivot rows (step 2) and synthesize/check queries (steps 3–7).
Findings from all three oracles are collected as replayable
:class:`~repro.core.reports.BugReport` objects.

Every statement sent to the target is logged, so a finding's test case
is the exact statement prefix that reproduces it — the input to the
reducer (and the raw material for the paper's Figures 2 and 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.adapters.base import DBMSConnection, execute_batch
from repro.core.containment import check_containment
from repro.core.error_oracle import ErrorOracle, statement_kind
from repro.core.exprgen import ExpressionGenerator
from repro.core.pivot import PivotRow, PivotSelector
from repro.core.querygen import QueryGenerator
from repro.core.reports import BugReport, Oracle, RunStatistics, TestCase
from repro.core.schema import SchemaModel
from repro.dialects import get_dialect
from repro.errors import DBCrash, DBError, DBTimeout, PQSError
from repro.guidance.scheduler import NULL_GUIDANCE
from repro.interp import make_interpreter
from repro.multiplan.oracle import MultiPlanOracle, NULL_MULTIPLAN
from repro.plantime.collector import NULL_PLAN_TIMER, PlanTimer
from repro.interp.base import EvalError
from repro.rng import RandomSource
from repro.stategen.actions import ActionGenerator
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry import names as metric_names


@dataclass
class RunnerConfig:
    """Knobs for one PQS run; defaults follow the paper's §3.4 choices."""

    dialect: str = "sqlite"
    seed: int = 0
    min_tables: int = 1
    max_tables: int = 2
    #: Rows per table — the paper found most bugs with 10–30 rows.
    min_rows: int = 3
    max_rows: int = 12
    #: Additional random statements after the initial state.
    extra_statements: int = 10
    #: Pivot selections per database state.
    pivots_per_database: int = 4
    #: Synthesized queries per pivot row.
    queries_per_pivot: int = 5
    max_expression_depth: int = 4
    expression_targets_probability: float = 0.4
    aggregate_probability: float = 0.15
    groupby_probability: float = 0.25
    #: Check containment via INTERSECT (vs client-side) when supported.
    use_intersect_probability: float = 0.3
    #: Disable rectification (Algorithm 3) — ablation only; makes the
    #: containment oracle unsound.
    rectify: bool = True
    #: Probability of the §7 negative-containment mode (condition FALSE
    #: on the pivot row => the row must NOT be fetched).  Applied only
    #: when the pivot row is value-unique within its (single) table.
    negative_probability: float = 0.1
    #: Error-message patterns the target's developers have documented as
    #: intended (see ErrorOracle).  Pass
    #: error_oracle.SQLITE3_DOCUMENTED_QUIRKS when driving a modern real
    #: SQLite build.
    documented_quirks: tuple = ()
    #: Stop a database round after this many findings (keeps campaign
    #: test cases small).
    max_reports_per_database: int = 3
    #: Cross-check every synthesized query across all distinct feasible
    #: plans (repro.multiplan).  Forced executions go through the
    #: adapters' non-logged ``with_plan`` hook, so the tested statement
    #: stream is bit-identical with this on or off.
    multiplan: bool = False
    #: Collect per-plan timings and planner-regression findings
    #: (repro.plantime).  Requires multiplan; adds re-executions through
    #: the non-logged ``with_plan`` hook only, so the tested statement
    #: stream stays bit-identical with this on or off.
    plan_timing: bool = False
    #: Timed re-executions per plan; the minimum is kept (robust
    #: min-of-k sampling).
    plan_timing_repeats: int = 3
    #: Flag a query as a planner regression when the unforced plan is at
    #: least this many times slower than the best forced plan.
    plan_regression_ratio: float = 1.5
    #: Statements shipped per pipe round-trip for the *pre-planned*
    #: parts of a round (initial state plan, relation probes).  Only
    #: batches work whose SQL does not depend on earlier outcomes, so
    #: the statement stream reaching the target is byte-identical at
    #: every batch size (1 = one statement per round-trip).
    batch_size: int = 16


@dataclass
class DatabaseRound:
    """Outcome of one database (state + queries)."""

    reports: list[BugReport] = field(default_factory=list)
    statements: int = 0
    queries: int = 0
    pivots: int = 0
    expected_errors: int = 0
    timeouts: int = 0
    #: Wall-clock seconds for the whole round (always measured — two
    #: monotonic reads per round — so throughput is computable even with
    #: telemetry off, and journals carry timing across --resume).
    seconds: float = 0.0
    #: Multi-plan oracle outcome for the round ({} unless enabled):
    #: queries / divergences / forced_failures counters plus the
    #: plans-per-query distribution.
    multiplan: dict = field(default_factory=dict)
    #: Per-plan timing outcome for the round ({} unless --plan-timing):
    #: timed query count, per-query plan timings, and any
    #: PlanRegression records (repro.plantime.collector format).
    plantime: dict = field(default_factory=dict)


class PQSRunner:
    """Runs Pivoted Query Synthesis against one connection factory."""

    def __init__(self, connection_factory: Callable[[], DBMSConnection],
                 config: Optional[RunnerConfig] = None,
                 telemetry: Optional[Telemetry] = None,
                 guidance=None, multiplan=None):
        self.connection_factory = connection_factory
        self.config = config or RunnerConfig()
        self.telemetry = telemetry or NULL_TELEMETRY
        #: Plan-coverage guidance (repro.guidance); NULL_GUIDANCE keeps
        #: the unguided path bit-identical to a build without it.
        self.guidance = guidance or NULL_GUIDANCE
        #: Multi-plan differential oracle (repro.multiplan); built from
        #: config.multiplan unless an instance is passed explicitly.
        if multiplan is None:
            if self.config.plan_timing and not self.config.multiplan:
                raise PQSError(
                    "plan timing requires the multiplan oracle")
            timer = (PlanTimer(
                         repeats=self.config.plan_timing_repeats,
                         ratio=self.config.plan_regression_ratio,
                         telemetry=self.telemetry)
                     if self.config.plan_timing else NULL_PLAN_TIMER)
            multiplan = (MultiPlanOracle(telemetry=self.telemetry,
                                         timer=timer)
                         if self.config.multiplan else NULL_MULTIPLAN)
        self.multiplan = multiplan
        #: The oracle's timing collector (NULL_PLAN_TIMER when off or
        #: when a custom oracle without one was injected).
        self.plan_timer = getattr(multiplan, "timer", NULL_PLAN_TIMER)
        self.rng = RandomSource(self.config.seed)
        self.dialect = get_dialect(self.config.dialect)
        self.interpreter = make_interpreter(self.config.dialect)
        self.error_oracle = ErrorOracle(
            self.config.dialect,
            documented_quirks=tuple(self.config.documented_quirks))
        # Instruments are resolved once here; the hot loop only calls
        # inc()/observe()/__enter__ on them (no-ops when disabled).
        t = self.telemetry
        self._m_rounds = t.counter(metric_names.ROUNDS)
        self._m_statements = t.counter(metric_names.STATEMENTS)
        self._m_queries = t.counter(metric_names.QUERIES)
        self._m_pivots = t.counter(metric_names.PIVOTS)
        self._m_timeouts = t.counter(metric_names.TIMEOUTS)
        self._m_round_seconds = t.histogram(metric_names.ROUND_SECONDS)
        self._phase_stategen = t.phase(metric_names.PHASE_STATEGEN)
        self._phase_pivot = t.phase(metric_names.PHASE_PIVOT)
        self._phase_synth = t.phase(metric_names.PHASE_SYNTH)
        self._phase_contain = t.phase(metric_names.PHASE_CONTAIN)

    # -- public -----------------------------------------------------------
    def run(self, databases: int = 10) -> RunStatistics:
        stats = RunStatistics()
        for _ in range(databases):
            round_ = self.run_database_round()
            stats.databases += 1
            stats.statements += round_.statements
            stats.queries += round_.queries
            stats.pivots += round_.pivots
            stats.expected_errors += round_.expected_errors
            stats.timeouts += round_.timeouts
            stats.seconds += round_.seconds
            stats.absorb_multiplan(round_.multiplan)
            stats.absorb_plantime(round_.plantime)
            stats.reports.extend(round_.reports)
        return stats

    def reseed(self, seed: int) -> None:
        """Reset the random stream mid-run (journaled campaigns derive an
        independent seed per database so an interrupted hunt can resume
        at any round without replaying the rounds before it)."""
        self.config.seed = seed
        self.rng = RandomSource(seed)

    def run_database_round(self) -> DatabaseRound:
        """One full pass: state generation, pivots, queries, oracles."""
        started = time.monotonic()
        connection = self.connection_factory()
        round_ = DatabaseRound()
        # Fresh database => default run-time options; the oracle's LIKE
        # semantics must track PRAGMA case_sensitive_like (§3.4: the
        # paper's SQLite component models run-time options exactly).
        if hasattr(self.interpreter.semantics, "like_case_sensitive"):
            self.interpreter.semantics.like_case_sensitive = False
        log: list[str] = []
        schema = SchemaModel(dialect=self.config.dialect)
        # Guidance may redirect state generation to a scheduler-chosen
        # seed (replaying an "interesting" state) plus a mutation burst.
        # With guidance off (or passive) the profile is None and state
        # generation draws from self.rng exactly as it always has.
        profile = self.guidance.begin_round(self.config.seed)
        mutators: list[ActionGenerator] = []
        mutation_statements = 0
        if profile is None:
            actions = ActionGenerator(self.dialect, schema, self.rng)
        else:
            actions = ActionGenerator(self.dialect, schema,
                                      RandomSource(profile.state_seed))
            mutation_statements = profile.mutation_statements
            mutators = [
                ActionGenerator(self.dialect, schema,
                                RandomSource(mutation_seed),
                                weights=profile.weights)
                for mutation_seed in profile.mutations]
        try:
            with self._phase_stategen:
                self._generate_state(connection, schema, actions, log,
                                     round_, mutators,
                                     mutation_statements)
            if len(round_.reports) < self.config.max_reports_per_database:
                self._query_phase(connection, schema, log, round_)
        finally:
            connection.close()
        self.guidance.end_round()
        round_.multiplan = self.multiplan.take_round_outcome()
        round_.plantime = self.plan_timer.take_round_outcome()
        round_.seconds = time.monotonic() - started
        self._m_round_seconds.observe(round_.seconds)
        self._m_rounds.inc()
        return round_

    # -- step 1: random state ----------------------------------------------
    def _generate_state(self, connection: DBMSConnection,
                        schema: SchemaModel, actions: ActionGenerator,
                        log: list[str], round_: DatabaseRound,
                        mutators: Optional[list[ActionGenerator]] = None,
                        mutation_statements: int = 0) -> None:
        # Table/row counts come from the state generator's stream —
        # unguided that stream *is* self.rng (identical draws to before
        # guidance existed); guided it is the scheduler's state seed, so
        # replaying the seed reproduces the whole state.
        n_tables = actions.rng.int_between(self.config.min_tables,
                                           self.config.max_tables)
        rows = actions.rng.int_between(self.config.min_rows,
                                       self.config.max_rows)
        # The initial plan ships in batches, group by group: within a
        # group the SQL never depends on an earlier statement's outcome,
        # and outcomes are absorbed in order (on_success callbacks
        # included), so bookkeeping matches sequential execution
        # exactly.  A batch stops at its first failure and the remainder
        # is resubmitted, mirroring what one-at-a-time submission would
        # have executed.
        batch = max(1, self.config.batch_size)
        for group in actions.initial_plan_groups(n_tables, rows):
            index = 0
            while index < len(group):
                chunk = group[index:index + batch]
                outcomes = execute_batch(connection,
                                         [g.sql for g in chunk])
                if not outcomes:
                    break
                for generated, outcome in zip(chunk, outcomes):
                    index += 1
                    self._absorb_outcome(generated.sql,
                                         generated.on_success,
                                         outcome, log, round_)
                    if len(round_.reports) >= \
                            self.config.max_reports_per_database:
                        return
        for _ in range(self.config.extra_statements):
            generated = actions.random_action()
            if generated is None:
                continue
            self._run_statement(connection, generated.sql,
                                generated.on_success, log, round_)
            if len(round_.reports) >= self.config.max_reports_per_database:
                return
        closing = actions.close_transaction()
        if closing is not None:
            self._run_statement(connection, closing.sql,
                                closing.on_success, log, round_)
        # Guided mutation bursts: extra index/ANALYZE-heavy statements
        # stacked on the replayed base state, each burst from its own
        # independent stream so replaying the chain reproduces the state.
        for mutator in mutators or ():
            for _ in range(mutation_statements):
                generated = mutator.random_action()
                if generated is None:
                    continue
                self._run_statement(connection, generated.sql,
                                    generated.on_success, log, round_)
                if len(round_.reports) >= \
                        self.config.max_reports_per_database:
                    return
            closing = mutator.close_transaction()
            if closing is not None:
                self._run_statement(connection, closing.sql,
                                    closing.on_success, log, round_)

    def _run_statement(self, connection: DBMSConnection, sql: str,
                       on_success, log: list[str],
                       round_: DatabaseRound) -> None:
        try:
            rows = connection.execute(sql)
        except DBCrash as crash:
            outcome = ("crash", crash)
        except DBTimeout as timeout:
            outcome = ("timeout", timeout)
        except DBError as error:
            outcome = ("error", error)
        else:
            outcome = ("ok", rows)
        self._absorb_outcome(sql, on_success, outcome, log, round_)

    def _absorb_outcome(self, sql: str, on_success,
                        outcome: tuple, log: list[str],
                        round_: DatabaseRound) -> None:
        """Feed one statement outcome (sequential or batched) to the
        oracles — the single bookkeeping path for state generation."""
        kind, payload = outcome
        round_.statements += 1
        self._m_statements.inc()
        if kind == "ok":
            log.append(sql)
            if on_success is not None:
                on_success()
            self._track_option(sql)
        elif kind == "error":
            verdict = self.error_oracle.classify(sql, payload)
            if verdict.expected:
                round_.expected_errors += 1
                self._count_expected(sql)
                return
            log.append(sql)
            round_.reports.append(self._report(Oracle.ERROR, log,
                                               payload.message))
        elif kind == "timeout":
            # The watchdog killed the statement; the harness restored
            # state without it, so it is neither logged nor a finding.
            round_.timeouts += 1
            self._m_timeouts.inc()
        else:
            log.append(sql)
            round_.reports.append(self._report(Oracle.CRASH, log,
                                               payload.message))

    _CSL_PATTERN = None

    def _track_option(self, sql: str) -> None:
        """Mirror semantics-affecting options into the oracle."""
        if self.config.dialect != "sqlite":
            return
        import re

        if PQSRunner._CSL_PATTERN is None:
            PQSRunner._CSL_PATTERN = re.compile(
                r"PRAGMA\s+case_sensitive_like\s*=\s*(\S+)", re.IGNORECASE)
        match = PQSRunner._CSL_PATTERN.match(sql.strip())
        if match:
            value = match.group(1).strip("'\"").lower()
            sensitive = value in ("1", "true", "on", "yes")
            self.interpreter.semantics.like_case_sensitive = sensitive

    # -- steps 2–7: pivots and queries ----------------------------------------
    def _query_phase(self, connection: DBMSConnection,
                     schema: SchemaModel, log: list[str],
                     round_: DatabaseRound) -> None:
        selector = PivotSelector(connection, schema, self.rng)
        generator = ExpressionGenerator(
            self.dialect, self.rng,
            max_depth=self.config.max_expression_depth)
        querygen = QueryGenerator(
            generator, self.interpreter, self.rng,
            self.config.expression_targets_probability,
            self.config.aggregate_probability,
            self.config.groupby_probability,
            rectify=self.config.rectify)

        for _ in range(self.config.pivots_per_database):
            with self._phase_pivot:
                tables_rows = self._probe_relations(connection, schema,
                                                    log, round_)
                if not tables_rows or \
                        len(round_.reports) >= \
                        self.config.max_reports_per_database:
                    return
                # Mostly one table, sometimes two (90% of the paper's
                # bug reports involved a single table).
                count = (1 if len(tables_rows) == 1 or self.rng.flip(0.7)
                         else 2)
                chosen = self.rng.sample(tables_rows, count)
                pivot = selector.select(chosen)
            round_.pivots += 1
            self._m_pivots.inc()
            for _ in range(self.config.queries_per_pivot):
                self._one_query(connection, querygen, pivot, log, round_,
                                chosen)
                if len(round_.reports) >= \
                        self.config.max_reports_per_database:
                    return

    def _probe_relations(self, connection: DBMSConnection,
                         schema: SchemaModel, log: list[str],
                         round_: DatabaseRound) -> list:
        """SELECT * from every relation, feeding errors to the oracles.

        Probe SQL is fixed per table, so all probes ship as one batch;
        a failed probe never stopped the sequential loop either, so the
        remainder is always resubmitted.
        """
        healthy = []
        tables = list(schema.relations())
        sqls = [f"SELECT * FROM {table.name}" for table in tables]
        batch = max(1, self.config.batch_size)
        index = 0
        while index < len(tables):
            outcomes = execute_batch(connection,
                                     sqls[index:index + batch])
            if not outcomes:
                break
            for table, sql, outcome in zip(tables[index:], sqls[index:],
                                           outcomes):
                index += 1
                kind, payload = outcome
                if kind == "ok":
                    if payload and all(len(r) == len(table.columns)
                                       for r in payload):
                        healthy.append((table, payload))
                elif kind == "crash":
                    round_.reports.append(self._report(
                        Oracle.CRASH, log + [sql], payload.message))
                elif kind == "timeout":
                    round_.timeouts += 1
                    self._m_timeouts.inc()
                else:
                    verdict = self.error_oracle.classify(sql, payload)
                    if verdict.expected:
                        round_.expected_errors += 1
                        self._count_expected(sql)
                    else:
                        round_.reports.append(self._report(
                            Oracle.ERROR, log + [sql], payload.message))
        return healthy

    def _one_query(self, connection: DBMSConnection,
                   querygen: QueryGenerator, pivot: PivotRow,
                   log: list[str], round_: DatabaseRound,
                   chosen=None) -> None:
        negative = (chosen is not None
                    and self.rng.flip(self.config.negative_probability)
                    and self._negative_mode_sound(pivot, chosen))
        try:
            with self._phase_synth:
                if negative:
                    query = querygen.synthesize_negative(pivot)
                else:
                    query = querygen.synthesize(pivot)
        except EvalError:
            return
        round_.queries += 1
        self._m_queries.inc()
        self.guidance.observe_query(connection, query.sql)
        use_intersect = self.rng.flip(
            self.config.use_intersect_probability)
        try:
            with self._phase_contain:
                contained = check_containment(
                    connection, query, self.interpreter.semantics,
                    use_intersect=use_intersect)
        except DBCrash as crash:
            round_.reports.append(self._report(
                Oracle.CRASH, log + [query.sql], crash.message))
            return
        except DBTimeout:
            round_.timeouts += 1
            self._m_timeouts.inc()
            return
        except DBError as error:
            verdict = self.error_oracle.classify(query.sql, error)
            if verdict.expected:
                round_.expected_errors += 1
                self._count_expected(query.sql)
            else:
                round_.reports.append(self._report(
                    Oracle.ERROR, log + [query.sql], error.message))
            return
        if query.negative:
            if contained:
                report = self._report(
                    Oracle.CONTAINMENT, log + [query.sql],
                    "pivot row fetched although the condition is FALSE "
                    "for it")
                report.test_case.expected_row = list(query.expected)
                round_.reports.append(report)
        elif not contained:
            expected = [v for v in query.expected]
            report = self._report(
                Oracle.CONTAINMENT, log + [query.sql],
                "pivot row not contained in result set")
            report.test_case.expected_row = expected
            round_.reports.append(report)
        self._check_multiplan(connection, query, log, round_)

    def _check_multiplan(self, connection: DBMSConnection, query,
                         log: list[str], round_: DatabaseRound) -> None:
        """Cross-check *query* across forced plans (no-op when off)."""
        if not self.multiplan.enabled:
            return
        if len(round_.reports) >= self.config.max_reports_per_database:
            return
        divergence = self.multiplan.check(connection, query,
                                          self.interpreter.semantics)
        if divergence is None:
            return
        report = self._report(Oracle.MULTIPLAN, log + [query.sql],
                              divergence.message)
        report.test_case.expected_row = list(query.expected)
        report.plan_results = divergence.plan_results()
        round_.reports.append(report)

    def _negative_mode_sound(self, pivot: PivotRow, chosen) -> bool:
        """Negative containment is sound only for a single-table pivot
        whose row is value-unique in that table — under the *same*
        collation-aware equality the containment check uses, since an
        equal-valued sibling would legitimately appear in the result."""
        if len(pivot.tables) != 1:
            return False
        table = pivot.tables[0]
        pivot_row = pivot.row_by_table[table.name]
        collations = [c.collation for c in table.columns]
        equal_count = 0
        for model, rows in chosen:
            if model.name != table.name:
                continue
            for row in rows:
                if len(row) == len(pivot_row) and all(
                        self._values_match(a, b, coll)
                        for a, b, coll in zip(row, pivot_row, collations)):
                    equal_count += 1
        return equal_count == 1

    def _values_match(self, a, b, collation) -> bool:
        from repro.values import SQLType

        if self.config.dialect == "sqlite" and \
                collation not in (None, "BINARY") and \
                a.t is SQLType.TEXT and b.t is SQLType.TEXT:
            from repro.interp.sqlite_sem import storage_compare

            return storage_compare(a, b, collation) == 0
        return self.interpreter.semantics.values_equal(a, b)

    def _count_expected(self, sql: str) -> None:
        """Expected-error counter, labeled by statement kind (the
        error oracle's acceptance profile is itself a telemetry
        target: a kind whose expected-error share explodes usually
        means the generator regressed)."""
        if not self.telemetry.registry.enabled:
            return
        self.telemetry.counter(metric_names.EXPECTED_ERRORS,
                               kind=statement_kind(sql)).inc()

    def _report(self, oracle: Oracle, statements: list[str],
                message: str) -> BugReport:
        if self.telemetry.registry.enabled:
            self.telemetry.counter(metric_names.REPORTS,
                                   oracle=oracle.value).inc()
        self.telemetry.tracer.event("report", oracle=oracle.value)
        return BugReport(
            oracle=oracle, dialect=self.config.dialect,
            test_case=TestCase(statements=list(statements),
                               dialect=self.config.dialect),
            message=message, seed=self.config.seed)
