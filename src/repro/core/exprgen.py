"""Random expression generation — the paper's Algorithm 1.

``generateExpression(depth)``: at maximum depth only leaf nodes (literal
or column reference) are produced; otherwise composite operators from the
dialect's catalog are drawn.  For SQLite and MySQL "SQLancer generates
expressions of any type, because they provide implicit conversions to
boolean; for PostgreSQL, which performs few implicit conversions, the
generated root node must produce a boolean value" (§3.2) — here that is
the ``boolean_root`` flag driving typed generation.

The generator emits only the fragment the oracle interpreter models
exactly (e.g. SUBSTR offsets are small literals), the same scoping
decision SQLancer made for functions like ``printf`` (§5).
"""

from __future__ import annotations

from repro.dialects import Dialect
from repro.core.literals import LiteralGenerator
from repro.rng import RandomSource
from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    BinaryOp,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    Expr,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    UnaryNode,
    UnaryOp,
)
from repro.values import Value

#: Operators that combine two boolean operands.
_LOGICAL = (BinaryOp.AND, BinaryOp.OR)
#: Comparison operators usable in strict boolean contexts.
_PG_COMPARISONS = (BinaryOp.EQ, BinaryOp.NE, BinaryOp.LT, BinaryOp.LE,
                   BinaryOp.GT, BinaryOp.GE)
_PG_NUMERIC_OPS = (BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL)


class ExpressionGenerator:
    """Draws random expression trees over a set of visible columns."""

    def __init__(self, dialect: Dialect, rng: RandomSource,
                 max_depth: int = 4):
        self.dialect = dialect
        self.rng = rng
        self.max_depth = max_depth
        self.literals = LiteralGenerator(dialect.name, rng)
        #: (node, bucket) pairs for the columns currently in scope.
        self.columns: list[tuple[ColumnNode, str]] = []
        #: Pivot-row values keyed by qualified column name; the template
        #: generator draws constants from these (comparing a column with
        #: a value that actually occurs reaches far more comparison code
        #: than comparing with arbitrary constants).
        self.pivot_values: dict[str, Value] = {}

    def set_columns(self, columns: list[tuple[ColumnNode, str]],
                    pivot_values: dict[str, Value] | None = None) -> None:
        self.columns = columns
        self.pivot_values = pivot_values or {}

    # -- entry points -----------------------------------------------------
    def condition(self) -> Expr:
        """A candidate WHERE/JOIN condition (pre-rectification)."""
        if self.dialect.boolean_root:
            return self._pg(0, "boolean")
        return self._dyn(0)

    def scalar(self) -> Expr:
        """An expression for a SELECT target (expressions-on-columns
        extension, §3.4)."""
        if self.dialect.boolean_root:
            bucket = self.rng.choice(["number", "text", "boolean"])
            return self._pg(0, bucket)
        return self._dyn(0)

    # -- dynamically-typed dialects (sqlite, mysql) ---------------------------
    def _dyn(self, depth: int) -> Expr:
        # Algorithm 1: at max depth, only LITERAL and COLUMN node types.
        if depth >= self.max_depth or self.rng.flip(0.15):
            return self._leaf()
        if self.columns and self.rng.flip(0.18):
            # Column-vs-literal comparison template: the shape most of
            # the paper's reduced test cases boil down to (c0 IS NOT 1,
            # c0 LIKE './', c0 <=> 2035382037, ...).
            node, _bucket = self.rng.choice(self.columns)
            op = self.rng.choice(self.dialect.binary_ops)
            literal = self._template_literal(node)
            if self.rng.flip():
                return BinaryNode(op, node, literal)
            return BinaryNode(op, literal, node)
        if depth + 1 < self.max_depth and self.rng.flip(0.04):
            # Stacked negation — semantically interesting for integers
            # (NOT (NOT 123) is 1, not 123; paper Listing 13).
            return UnaryNode(UnaryOp.NOT,
                             UnaryNode(UnaryOp.NOT, self._dyn(depth + 2)))
        choice = self.rng.int_between(0, 9)
        if choice <= 3:
            op = self.rng.choice(self.dialect.binary_ops)
            return BinaryNode(op, self._dyn(depth + 1), self._dyn(depth + 1))
        if choice == 4:
            op = self.rng.choice(self.dialect.unary_ops)
            return UnaryNode(op, self._dyn(depth + 1))
        if choice == 5:
            op = self.rng.choice(self.dialect.postfix_ops)
            return PostfixNode(op, self._dyn(depth + 1))
        if choice == 6:
            return self._function(depth)
        if choice == 7:
            if self.rng.flip(0.5):
                return CastNode(self._dyn(depth + 1),
                                self.rng.choice(self.dialect.cast_types))
            if self.dialect.collations and self.rng.flip():
                return CollateNode(self._dyn(depth + 1),
                                   self.rng.choice(self.dialect.collations))
            return BetweenNode(self._dyn(depth + 1), self._dyn(depth + 1),
                               self._dyn(depth + 1),
                               negated=self.rng.flip())
        if choice == 8:
            items = tuple(self._dyn(depth + 1)
                          for _ in range(self.rng.int_between(1, 3)))
            return InListNode(self._dyn(depth + 1), items,
                              negated=self.rng.flip())
        whens = tuple((self._dyn(depth + 1), self._dyn(depth + 1))
                      for _ in range(self.rng.int_between(1, 2)))
        else_ = self._dyn(depth + 1) if self.rng.flip(0.7) else None
        return CaseNode(None, whens, else_)

    def _template_literal(self, column: ColumnNode) -> Expr:
        pivot_value = self.pivot_values.get(column.qualified)
        if pivot_value is not None and self.rng.flip(0.3) and \
                not (isinstance(pivot_value.v, float)
                     and pivot_value.v != pivot_value.v):
            return LiteralNode(pivot_value)
        return self.literals.any_literal()

    def _leaf(self) -> Expr:
        if self.columns and self.rng.flip(0.55):
            node, _bucket = self.rng.choice(self.columns)
            return node
        return self.literals.any_literal()

    def _function(self, depth: int) -> Expr:
        sig = self.rng.choice(self.dialect.functions)
        arity = self.rng.int_between(sig.min_arity, sig.max_arity)
        if sig.name == "SUBSTR":
            # Small literal offsets keep SUBSTR inside the exactly-
            # modeled fragment (SQLite's int64 offset overflow corner).
            args: list[Expr] = [self._dyn(depth + 1)]
            for _ in range(arity - 1):
                args.append(LiteralNode(
                    Value.integer(self.rng.int_between(-6, 7))))
            return FunctionNode(sig.name, tuple(args))
        return FunctionNode(sig.name, tuple(self._dyn(depth + 1)
                                            for _ in range(arity)))

    # -- strict dialect (postgres) ------------------------------------------
    def _pg(self, depth: int, bucket: str) -> Expr:
        if depth >= self.max_depth or self.rng.flip(0.2):
            return self._pg_leaf(bucket)
        if bucket == "boolean":
            return self._pg_boolean(depth)
        if bucket == "number":
            return self._pg_number(depth)
        if bucket == "text":
            return self._pg_text(depth)
        return self._pg_leaf(bucket)

    def _pg_leaf(self, bucket: str) -> Expr:
        matching = [node for node, b in self.columns if b == bucket]
        if matching and self.rng.flip(0.55):
            return self.rng.choice(matching)
        return self.literals.typed_literal(bucket)

    def _pg_boolean(self, depth: int) -> Expr:
        if self.columns and self.rng.flip(0.18):
            # Column-vs-literal comparison template (well-typed).
            node, bucket = self.rng.choice(self.columns)
            if bucket in ("number", "text", "boolean"):
                pivot_value = self.pivot_values.get(node.qualified)
                if pivot_value is not None and not pivot_value.is_null \
                        and self.rng.flip(0.3):
                    literal: Expr = LiteralNode(pivot_value)
                else:
                    literal = self.literals.typed_literal(bucket)
                op = self.rng.choice(
                    _PG_COMPARISONS + (BinaryOp.IS, BinaryOp.IS_NOT))
                if self.rng.flip():
                    return BinaryNode(op, node, literal)
                return BinaryNode(op, literal, node)
        choice = self.rng.int_between(0, 6)
        if choice <= 1:
            op = self.rng.choice(_LOGICAL)
            return BinaryNode(op, self._pg(depth + 1, "boolean"),
                              self._pg(depth + 1, "boolean"))
        if choice == 2:
            return UnaryNode(UnaryOp.NOT, self._pg(depth + 1, "boolean"))
        if choice == 3:
            operand_bucket = self.rng.choice(["number", "text", "boolean"])
            op = self.rng.choice(self.dialect.postfix_ops)
            from repro.sqlast.nodes import PostfixOp

            if op in (PostfixOp.IS_TRUE, PostfixOp.IS_FALSE,
                      PostfixOp.IS_NOT_TRUE, PostfixOp.IS_NOT_FALSE):
                operand_bucket = "boolean"
            return PostfixNode(op, self._pg(depth + 1, operand_bucket))
        if choice == 4:
            return BinaryNode(self.rng.choice([BinaryOp.LIKE,
                                               BinaryOp.NOT_LIKE]),
                              self._pg(depth + 1, "text"),
                              self._pg(depth + 1, "text"))
        if choice == 5:
            operand_bucket = self.rng.choice(["number", "text"])
            return BetweenNode(self._pg(depth + 1, operand_bucket),
                               self._pg(depth + 1, operand_bucket),
                               self._pg(depth + 1, operand_bucket),
                               negated=self.rng.flip())
        operand_bucket = self.rng.choice(["number", "text", "boolean"])
        op = self.rng.choice(
            _PG_COMPARISONS + (BinaryOp.IS, BinaryOp.IS_NOT))
        return BinaryNode(op, self._pg(depth + 1, operand_bucket),
                          self._pg(depth + 1, operand_bucket))

    def _pg_number(self, depth: int) -> Expr:
        choice = self.rng.int_between(0, 4)
        if choice <= 1:
            op = self.rng.choice(_PG_NUMERIC_OPS)
            return BinaryNode(op, self._pg(depth + 1, "number"),
                              self._pg(depth + 1, "number"))
        if choice == 2:
            return UnaryNode(UnaryOp.MINUS, self._pg(depth + 1, "number"))
        if choice == 3:
            numeric_fns = [s for s in self.dialect.functions
                           if s.result == "number" and s.args == "number"]
            if numeric_fns:
                sig = self.rng.choice(numeric_fns)
                arity = self.rng.int_between(sig.min_arity, sig.max_arity)
                return FunctionNode(sig.name,
                                    tuple(self._pg(depth + 1, "number")
                                          for _ in range(arity)))
        if self.rng.flip():
            return CastNode(self._pg(depth + 1, "number"),
                            self.rng.choice(["INT", "FLOAT8"]))
        return self._pg_leaf("number")

    def _pg_text(self, depth: int) -> Expr:
        choice = self.rng.int_between(0, 3)
        if choice == 0:
            return BinaryNode(BinaryOp.CONCAT,
                              self._pg(depth + 1, "text"),
                              self._pg(depth + 1, "text"))
        if choice == 1:
            text_fns = [s for s in self.dialect.functions
                        if s.result == "text" and s.args == "text"]
            if text_fns:
                sig = self.rng.choice(text_fns)
                return FunctionNode(sig.name, (self._pg(depth + 1, "text"),))
        if choice == 2:
            bucket = self.rng.choice(["number", "boolean", "text"])
            return CastNode(self._pg(depth + 1, bucket), "TEXT")
        return self._pg_leaf("text")
