"""Expression-level shrinking of a failing query.

Statement-level ddmin (``reducer.py``) removes whole statements; the
paper's authors additionally "manually shortened [test cases] where
possible" (§4.1).  This module automates that step for the final query:
it parses the statement, then repeatedly tries to replace expression
subtrees with simpler equivalents-for-the-failure —

* a composite node with one of its children,
* any node with a small literal (NULL, 0, 1),
* dropping DISTINCT / ORDER BY / a JOIN's extra conjuncts is left to
  statement text candidates,

keeping a candidate whenever the caller's predicate still fails.  The
result is the kind of minimal expression the paper's listings show
(``t0.c0 IS NOT 1`` rather than a four-level tree).
"""

from __future__ import annotations

from typing import Callable

from repro.core.reports import TestCase
from repro.minidb.parser import parse_statement
from repro.minidb.statements import Select
from repro.sqlast.nodes import Expr, LiteralNode, walk
from repro.sqlast.render import render_expr
from repro.values import NULL, Value

FailurePredicate = Callable[[TestCase], bool]

#: Replacement literals tried for every subtree, simplest first.
_LITERAL_CANDIDATES = (LiteralNode(NULL), LiteralNode(Value.integer(0)),
                       LiteralNode(Value.integer(1)))


class QueryShrinker:
    """Shrinks the WHERE/ON expressions of a failing final SELECT."""

    def __init__(self, still_fails: FailurePredicate,
                 max_attempts: int = 400):
        self.still_fails = still_fails
        self.max_attempts = max_attempts
        self.attempts = 0

    def shrink(self, test_case: TestCase) -> TestCase:
        """Return a test case whose final query is expression-minimal.

        Only SELECT finals are shrunk (error/crash finals are usually a
        single maintenance statement already); anything unparseable is
        returned unchanged.
        """
        final = test_case.statements[-1]
        try:
            statement = parse_statement(final)
        except Exception:  # noqa: BLE001 - foreign dialect corner
            return test_case
        if not isinstance(statement, Select) or statement.where is None:
            return test_case
        best = statement.where
        improved = True
        while improved and self.attempts < self.max_attempts:
            improved = False
            for candidate in self._candidates(best):
                if self._node_count(candidate) >= self._node_count(best):
                    continue
                rebuilt = self._rebuild(test_case, final, best, candidate)
                if rebuilt is None:
                    continue
                self.attempts += 1
                if self.attempts > self.max_attempts:
                    break
                if self.still_fails(rebuilt):
                    best = candidate
                    test_case = rebuilt
                    final = test_case.statements[-1]
                    improved = True
                    break
        return test_case

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _node_count(expr: Expr) -> int:
        return sum(1 for _ in walk(expr))

    def _candidates(self, expr: Expr):
        """Smaller variants of *expr*: each subtree hoisted to the root,
        then every subtree swapped for a literal."""
        for node in walk(expr):
            if node is not expr:
                yield node
        for target in walk(expr):
            for literal in _LITERAL_CANDIDATES:
                replaced = _replace_once(expr, target, literal)
                if replaced is not None:
                    yield replaced

    def _rebuild(self, test_case: TestCase, final: str, old: Expr,
                 new: Expr) -> TestCase | None:
        old_text = render_expr(old, test_case.dialect)
        new_text = render_expr(new, test_case.dialect)
        if old_text not in final:
            return None
        rebuilt_final = final.replace(old_text, new_text, 1)
        statements = test_case.statements[:-1] + [rebuilt_final]
        return TestCase(statements=statements,
                        expected_row=test_case.expected_row,
                        dialect=test_case.dialect)


def _replace_once(root: Expr, target: Expr, replacement: Expr,
                  ) -> Expr | None:
    """Replace the first occurrence of *target* (by identity) in *root*."""
    from repro.sqlast.transform import transform

    done = [False]

    def visit(node: Expr):
        if not done[0] and node is target:
            done[0] = True
            return replacement
        return None

    out = transform(root, visit)
    if not done[0] or out is root:
        return None
    return out
