"""Seeded random source used by every generator in the tool.

Wrapping :class:`random.Random` in one place gives us (a) reproducible
campaigns from a single seed, (b) domain-specific helpers (weighted choice,
identifier and literal drawing), and (c) a single point to instrument when
measuring generator behaviour.
"""

from __future__ import annotations

import random
import string
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

#: Characters used in random TEXT literals.  Deliberately mixes case (to
#: exercise NOCASE), trailing-space candidates (RTRIM), LIKE/GLOB wildcards,
#: quotes and digits — the character classes the paper's test cases hinge on.
TEXT_ALPHABET = string.ascii_letters + string.digits + " %_*?./!#,'\"-+"


class RandomSource:
    """A seeded pseudo-random source with SQL-generation helpers."""

    def __init__(self, seed: int | None = None):
        self.seed = seed if seed is not None else random.randrange(2**32)
        self._rng = random.Random(self.seed)

    def fork(self) -> "RandomSource":
        """Derive an independent child source (used per-thread/per-database)."""
        return RandomSource(self._rng.randrange(2**63))

    # -- primitives ---------------------------------------------------------
    def flip(self, probability: float = 0.5) -> bool:
        return self._rng.random() < probability

    def int_between(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return self._rng.randint(lo, hi)

    def choice(self, options: Sequence[T]) -> T:
        if not options:
            raise IndexError("choice() on an empty sequence")
        return self._rng.choice(options)

    def sample(self, options: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(options, k)

    def shuffled(self, options: Iterable[T]) -> list[T]:
        out = list(options)
        self._rng.shuffle(out)
        return out

    def weighted_choice(self, options: Sequence[T], weights: Sequence[float]) -> T:
        return self._rng.choices(options, weights=weights, k=1)[0]

    def random(self) -> float:
        return self._rng.random()

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    # -- SQL-flavoured draws --------------------------------------------------
    def small_int(self) -> int:
        """An integer biased toward boundary values, per fuzzing practice."""
        specials = [0, 1, -1, 2, -2, 127, -128, 255, 256, 2**31 - 1,
                    -(2**31), 2**63 - 1, -(2**63), 10, -10]
        if self.flip(0.5):
            return self.choice(specials)
        return self.int_between(-1000, 1000)

    def small_real(self) -> float:
        specials = [0.0, -0.0, 0.5, -0.5, 1.5, 1e10, -1e10, 1e-3]
        if self.flip(0.5):
            return self.choice(specials)
        return round(self._rng.uniform(-1000.0, 1000.0), 3)

    def short_text(self, max_len: int = 8) -> str:
        n = self.int_between(0, max_len)
        return "".join(self.choice(TEXT_ALPHABET) for _ in range(n))

    def short_blob(self, max_len: int = 8) -> bytes:
        n = self.int_between(0, max_len)
        return bytes(self.int_between(0, 255) for _ in range(n))

    def identifier(self, prefix: str, index: int) -> str:
        return f"{prefix}{index}"
