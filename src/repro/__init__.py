"""Pivoted Query Synthesis — a reproduction of Rigger & Su, OSDI 2020.

Public API tour:

* :class:`repro.core.PQSRunner` — the PQS loop (steps 1–7 of Figure 1)
  against any :class:`repro.adapters.DBMSConnection`;
* :class:`repro.minidb.Engine` — the from-scratch relational engine used
  as the offline system under test, with injectable defects
  (:data:`repro.minidb.BUG_CATALOG`) modeled on the paper's reported
  bugs;
* :class:`repro.campaigns.Campaign` — end-to-end bug-hunting runs with
  reduction, attribution and the paper's Tables/Figures statistics;
* :mod:`repro.interp` — the exact expression interpreter (the oracle),
  cross-validated against real SQLite;
* :class:`repro.adapters.SQLite3Connection` — run the same loop against
  a live SQLite build;
* :class:`repro.telemetry.Telemetry` — opt-in metrics registry and span
  tracer threaded through the runner, campaigns and fault harness.

Quick start::

    from repro import Campaign, CampaignConfig

    result = Campaign(CampaignConfig(dialect="sqlite", seed=1,
                                     databases=20)).run()
    for report in result.reports:
        print(report.oracle.value, report.attributed_bugs)
        print(report.test_case.render())
"""

from repro.adapters import (
    DBMSConnection,
    FaultPlan,
    FaultyFactory,
    MiniDBConnection,
    SQLite3Connection,
    SubprocessConfig,
    SubprocessConnection,
)
from repro.campaigns import Campaign, CampaignConfig, CampaignResult
from repro.core import (
    BugReport,
    Oracle,
    PQSRunner,
    RunnerConfig,
    TestCase,
    TestCaseReducer,
)
from repro.errors import (
    DBCrash,
    DBError,
    DBTimeout,
    HarnessError,
    PQSError,
)
from repro.minidb import BUG_CATALOG, BugRegistry, Engine, ResultSet
from repro.telemetry import MetricsRegistry, Telemetry, Tracer
from repro.values import Value

__version__ = "1.0.0"

__all__ = [
    "BUG_CATALOG",
    "BugRegistry",
    "BugReport",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "DBCrash",
    "DBError",
    "DBMSConnection",
    "DBTimeout",
    "Engine",
    "FaultPlan",
    "FaultyFactory",
    "HarnessError",
    "MetricsRegistry",
    "MiniDBConnection",
    "Oracle",
    "PQSError",
    "PQSRunner",
    "ResultSet",
    "RunnerConfig",
    "SQLite3Connection",
    "SubprocessConfig",
    "SubprocessConnection",
    "Telemetry",
    "TestCase",
    "TestCaseReducer",
    "Tracer",
    "Value",
    "__version__",
]
