"""Canonical metric and span names.

One vocabulary, used by the instrumentation sites (runner, subprocess
harness, campaigns), the progress reporter, the CLI snapshot writer,
and the benchmarks — so a dashboard built against one hunt works
against every hunt.  Naming follows the Prometheus conventions:
``_total`` for counters, ``_seconds`` for latency histograms.
"""

# -- PQS loop (repro.core.runner) -------------------------------------------
#: Completed database rounds (counter).
ROUNDS = "pqs_rounds_completed_total"
#: Statements sent during state generation (counter).
STATEMENTS = "pqs_statements_total"
#: Synthesized queries checked (counter).
QUERIES = "pqs_queries_total"
#: Pivot rows selected (counter).
PIVOTS = "pqs_pivots_total"
#: Errors the error oracle classified as expected (counter,
#: label ``kind`` = leading statement keyword).
EXPECTED_ERRORS = "pqs_expected_errors_total"
#: Watchdog expirations (counter).
TIMEOUTS = "pqs_timeouts_total"
#: Findings (counter, label ``oracle`` in contains/error/segfault).
REPORTS = "pqs_reports_total"
#: Per-phase latency (histogram, label ``phase`` — see PHASES).
PHASE_SECONDS = "pqs_phase_seconds"
#: Whole-round wall clock (histogram).
ROUND_SECONDS = "pqs_round_seconds"

#: The four instrumented phases of one PQS round (paper Figure 1):
#: random state generation (step 1), pivot selection (step 2, including
#: the relation probe), query synthesis incl. rectification (steps 3–5),
#: and the containment check (steps 6–7).
PHASE_STATEGEN = "stategen"
PHASE_PIVOT = "pivot_select"
PHASE_SYNTH = "synthesize"
PHASE_CONTAIN = "containment"
PHASES = (PHASE_STATEGEN, PHASE_PIVOT, PHASE_SYNTH, PHASE_CONTAIN)

# -- plan-coverage guidance (repro.guidance) --------------------------------
#: Distinct plan fingerprints seen so far (gauge).
GUIDANCE_PLANS_DISTINCT = "pqs_guidance_plans_distinct"
#: Rounds that produced at least one novel plan (counter).
GUIDANCE_NOVEL_ROUNDS = "pqs_guidance_novel_rounds_total"
#: Successful query_plan introspections (counter).
GUIDANCE_PLAN_LOOKUPS = "pqs_guidance_plan_lookups_total"

# -- multi-plan differential oracle (repro.multiplan) -----------------------
#: Queries the multi-plan oracle cross-checked (counter).
MULTIPLAN_QUERIES = "pqs_multiplan_queries_total"
#: Distinct feasible plans executed per query (histogram; unit is plans,
#: so it uses count-shaped buckets).
MULTIPLAN_PLANS_PER_QUERY = "pqs_multiplan_plans_per_query"
#: Queries where two plans returned different row multisets (counter).
MULTIPLAN_DIVERGENCES = "pqs_multiplan_divergences_total"
#: Forced-plan executions the target rejected (counter).
MULTIPLAN_FORCED_FAILURES = "pqs_multiplan_forced_failures_total"

# -- optimizer observatory (repro.plantime) ---------------------------------
#: Queries with per-plan timings collected (counter).
PLANTIME_QUERIES = "pqs_plantime_queries_total"
#: Min-of-k elapsed time per timed forced-plan execution (histogram).
PLANTIME_PLAN_SECONDS = "pqs_plantime_plan_seconds"
#: Planner slowdown per query — unforced baseline elapsed over best
#: forced elapsed (histogram; unit is a ratio, so it uses ratio-shaped
#: buckets).
PLANTIME_SLOWDOWN = "pqs_plantime_slowdown_ratio"
#: Queries flagged as planner regressions (slowdown at or above the
#: configured ratio; counter).
PLANTIME_REGRESSIONS = "pqs_plantime_regressions_total"

# -- supervised campaign fleet (repro.campaigns.{scheduler,supervisor}) -----
#: Campaign workers restarted by the supervisor after a death (counter).
SUPERVISOR_RESTARTS = "pqs_supervisor_worker_restarts_total"
#: Workers whose heartbeat went stale and had their leases stolen
#: (counter).
SUPERVISOR_STALLS = "pqs_supervisor_stalled_workers_total"
#: Deterministic backoff slept before worker restarts (counter, seconds).
SUPERVISOR_BACKOFF_SECONDS = "pqs_supervisor_backoff_seconds_total"
#: Rounds returned to the work queue after a failure, worker death, or
#: lease steal (counter).
SUPERVISOR_REQUEUED = "pqs_supervisor_requeued_rounds_total"
#: Rounds quarantined after exhausting the retry threshold (counter).
SUPERVISOR_QUARANTINED = "pqs_supervisor_quarantined_rounds_total"

# -- journal durability (repro.campaigns.journal) ----------------------------
#: Corrupt (checksum-mismatched or unparseable) journal lines skipped on
#: load (counter); a torn final line counts here too.
JOURNAL_CORRUPT_LINES = "pqs_journal_corrupt_lines_total"
#: Duplicate round indexes deduplicated on journal load (counter).
JOURNAL_DUPLICATE_ROUNDS = "pqs_journal_duplicate_rounds_total"
#: Rounds recovered (loaded and skipped) from a journal on resume
#: (counter).
JOURNAL_RECOVERED_ROUNDS = "pqs_journal_recovered_rounds_total"

# -- fault-isolation harness (repro.adapters.subprocess_adapter) ------------
#: Worker (re)starts after the initial spawn (counter).
WORKER_RESTARTS = "pqs_worker_restarts_total"
#: Hung workers killed by the statement watchdog (counter).
WATCHDOG_KILLS = "pqs_watchdog_kills_total"
#: Statements replayed per state restoration (histogram; unit is
#: statements, not seconds, so it uses count-shaped buckets).
REPLAY_STATEMENTS = "pqs_replay_statements"
#: Parent-observed execute() round-trip latency (histogram).
ROUNDTRIP_SECONDS = "pqs_subprocess_roundtrip_seconds"

# -- batched pipe protocol (repro.adapters.{subprocess_adapter,wire}) -------
#: Statements per execute_many batch (histogram; unit is statements,
#: so it uses count-shaped buckets).
PIPE_BATCH_STATEMENTS = "pqs_pipe_batch_statements"
#: Bytes written to worker pipes, frame headers included (counter).
PIPE_BYTES_SENT = "pqs_pipe_bytes_sent_total"
#: Bytes read from worker pipes, frame headers included (counter).
PIPE_BYTES_RECEIVED = "pqs_pipe_bytes_received_total"
#: Parent-side frame encode latency (histogram).
PIPE_ENCODE_SECONDS = "pqs_pipe_encode_seconds"
#: Parent-side frame decode latency (histogram).
PIPE_DECODE_SECONDS = "pqs_pipe_decode_seconds"

#: Bucket layout for count-valued histograms (replay lengths).
COUNT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)

#: Bucket layout for ratio-valued histograms (planner slowdowns): dense
#: around 1.0 where "fine" and "regressed" separate, sparse above.
RATIO_BUCKETS = (1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0)

#: ``# HELP`` text per metric family, emitted by
#: :meth:`~repro.telemetry.registry.MetricsRegistry.to_prometheus` —
#: the exposition-format conformance audit showed scrapes without HELP
#: lines render as bare names in every Prometheus UI.
HELP = {
    ROUNDS: "Completed database rounds",
    STATEMENTS: "Statements sent during state generation",
    QUERIES: "Synthesized queries checked by the containment oracle",
    PIVOTS: "Pivot rows selected",
    EXPECTED_ERRORS: "Errors the error oracle classified as expected",
    TIMEOUTS: "Watchdog expirations",
    REPORTS: "Findings, labeled by detecting oracle",
    PHASE_SECONDS: "Per-phase latency of the PQS loop",
    ROUND_SECONDS: "Whole-round wall clock",
    GUIDANCE_PLANS_DISTINCT: "Distinct plan fingerprints seen so far",
    GUIDANCE_NOVEL_ROUNDS: "Rounds that produced at least one novel plan",
    GUIDANCE_PLAN_LOOKUPS: "Successful query_plan introspections",
    MULTIPLAN_QUERIES: "Queries cross-checked by the multi-plan oracle",
    MULTIPLAN_PLANS_PER_QUERY: "Distinct feasible plans executed per query",
    MULTIPLAN_DIVERGENCES:
        "Queries where two plans returned different row multisets",
    MULTIPLAN_FORCED_FAILURES:
        "Forced-plan executions the target rejected",
    PLANTIME_QUERIES: "Queries with per-plan timings collected",
    PLANTIME_PLAN_SECONDS:
        "Min-of-k elapsed time per timed forced-plan execution",
    PLANTIME_SLOWDOWN:
        "Planner slowdown: baseline elapsed over best forced elapsed",
    PLANTIME_REGRESSIONS:
        "Queries flagged as planner regressions",
    SUPERVISOR_RESTARTS: "Campaign workers restarted after a death",
    SUPERVISOR_STALLS:
        "Workers whose heartbeat went stale and had leases stolen",
    SUPERVISOR_BACKOFF_SECONDS:
        "Deterministic backoff slept before worker restarts",
    SUPERVISOR_REQUEUED:
        "Rounds returned to the work queue after a failure or steal",
    SUPERVISOR_QUARANTINED:
        "Rounds quarantined after exhausting the retry threshold",
    JOURNAL_CORRUPT_LINES: "Corrupt journal lines skipped on load",
    JOURNAL_DUPLICATE_ROUNDS:
        "Duplicate round indexes deduplicated on journal load",
    JOURNAL_RECOVERED_ROUNDS: "Rounds recovered from a journal on resume",
    WORKER_RESTARTS: "Subprocess worker (re)starts after the initial spawn",
    WATCHDOG_KILLS: "Hung subprocess workers killed by the watchdog",
    REPLAY_STATEMENTS: "Statements replayed per state restoration",
    ROUNDTRIP_SECONDS: "Parent-observed execute() round-trip latency",
    PIPE_BATCH_STATEMENTS: "Statements per execute_many batch",
    PIPE_BYTES_SENT: "Bytes written to worker pipes",
    PIPE_BYTES_RECEIVED: "Bytes read from worker pipes",
    PIPE_ENCODE_SECONDS: "Parent-side frame encode latency",
    PIPE_DECODE_SECONDS: "Parent-side frame decode latency",
}
