"""Live campaign progress: a periodic one-line stderr heartbeat.

A long hunt used to run silent until the final summary; the paper's
own runs were babysat for months, which only works if the tool shows a
pulse.  :class:`ProgressReporter` samples the metrics registry from a
daemon thread every ``interval`` seconds and rewrites a line like::

    [pqs] round 37/100 (37%) | reports 2 | 841 stmts, 412 queries |
    163.4 q/s | ETA 12s

Reads are lock-protected registry sums — the reporter never touches
runner state, so it cannot perturb the hunt beyond its own sampling
cost (a handful of dict scans per tick).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Optional, TextIO

from repro.telemetry import names


class ProgressReporter:
    """Background thread printing campaign progress from the registry.

    A round is *done* when it completed **or** was quarantined — a
    poison round never completes, so counting completions alone stalls
    the percentage and the ETA on a quarantined tail forever.  The
    completed count is additionally clamped to the campaign total:
    under work stealing a stalled worker's round can run twice (the
    duplicate is dropped at the queue, but the runner's counter saw
    both), and a progress line must never read 103%.

    ``counts`` optionally overrides the registry read: a zero-argument
    callable returning ``(completed, quarantined)`` — the observatory
    supplies the work queue's exact settled counts this way, which also
    fixes parallel hunts (whose workers count rounds in private
    registries the shared one only sees after the join).
    """

    def __init__(self, registry, total_rounds: int,
                 interval: float = 2.0,
                 stream: Optional[TextIO] = None,
                 counts: Optional[Callable[[], tuple[int, int]]] = None):
        self.registry = registry
        self.total_rounds = max(total_rounds, 0)
        self.interval = max(interval, 0.05)
        self.stream = stream if stream is not None else sys.stderr
        self.counts = counts
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._start_time = time.monotonic()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "ProgressReporter":
        self._start_time = time.monotonic()
        self._thread = threading.Thread(target=self._run,
                                        name="pqs-progress", daemon=True)
        self._thread.start()
        return self

    def stop(self, final_line: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
            self._thread = None
        if final_line:
            self._write(self.render_line())

    def __enter__(self) -> "ProgressReporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- rendering ----------------------------------------------------------
    def _settled(self) -> tuple[int, int]:
        """(completed, quarantined), clamped so their sum never exceeds
        the campaign total (duplicate re-runs under work stealing)."""
        if self.counts is not None:
            completed, quarantined = self.counts()
        else:
            completed = int(self.registry.value(names.ROUNDS))
            quarantined = int(self.registry.value(
                names.SUPERVISOR_QUARANTINED))
        if self.total_rounds:
            quarantined = min(quarantined, self.total_rounds)
            completed = min(completed, self.total_rounds - quarantined)
        return completed, quarantined

    def render_line(self) -> str:
        """The current progress line (public so tests need no thread)."""
        elapsed = max(time.monotonic() - self._start_time, 1e-9)
        completed, quarantined = self._settled()
        done = completed + quarantined
        reports = int(self.registry.value(names.REPORTS))
        statements = int(self.registry.value(names.STATEMENTS))
        queries = int(self.registry.value(names.QUERIES))
        qps = queries / elapsed
        parts = [f"round {done}/{self.total_rounds}"
                 if self.total_rounds else f"round {done}"]
        if self.total_rounds:
            pct = min(100.0 * done / self.total_rounds, 100.0)
            parts[0] += f" ({pct:.0f}%)"
        parts.append(f"reports {reports}")
        if quarantined:
            parts.append(f"quarantined {quarantined}")
        parts.append(f"{statements} stmts, {queries} queries")
        parts.append(f"{qps:.1f} q/s")
        eta = self._eta(done, elapsed)
        if eta is not None:
            parts.append(f"ETA {_fmt_duration(eta)}")
        return "[pqs] " + " | ".join(parts)

    def _eta(self, done: int, elapsed: float) -> Optional[float]:
        if not self.total_rounds or done <= 0:
            return None
        remaining = self.total_rounds - done
        if remaining <= 0:
            return 0.0
        return remaining * (elapsed / done)

    # -- plumbing -----------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._write(self.render_line())

    def _write(self, line: str) -> None:
        try:
            self.stream.write(line + "\n")
            self.stream.flush()
        except (ValueError, OSError):
            # Stream closed under us (interpreter teardown) — stop quietly.
            self._stop.set()


def _fmt_duration(seconds: float) -> str:
    seconds = max(seconds, 0.0)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
