"""``repro.telemetry`` — metrics, tracing, and live progress for hunts.

The paper's evaluation is quantitative (queries/second §4.4, statement
distributions Figures 2–3, error and timeout behaviour); this package
is how the reproduction measures itself while it runs.  Three pieces:

* :class:`MetricsRegistry` (:mod:`repro.telemetry.registry`) —
  thread-safe counters/gauges/histograms with JSON snapshots (mergeable
  across workers) and Prometheus text export;
* :class:`Tracer` (:mod:`repro.telemetry.tracer`) — span-based JSONL
  trace events, monotonic-clock timed;
* :class:`ProgressReporter` (:mod:`repro.telemetry.progress`) — the
  periodic stderr heartbeat behind ``pqs hunt --progress``.

Everything is **off by default**: components take an optional
:class:`Telemetry` and fall back to :data:`NULL_TELEMETRY`, whose
instruments are shared no-ops.  The overhead budget (DESIGN.md §7) is
<5% disabled and the throughput benchmark keeps it honest.

Usage::

    from repro import telemetry

    t = telemetry.Telemetry()          # metrics on, tracing off
    runner = PQSRunner(factory, config, telemetry=t)
    runner.run(100)
    print(t.registry.to_prometheus())
"""

from __future__ import annotations

import time
from typing import Optional

from repro.telemetry import names
from repro.telemetry.progress import ProgressReporter
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.tracer import (
    JsonlSink,
    ListSink,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram", "JsonlSink",
    "ListSink", "MetricsRegistry", "NULL_TELEMETRY", "NullRegistry",
    "NullTracer", "PhaseTimer", "ProgressReporter", "Span", "Telemetry",
    "Tracer", "names",
]


class PhaseTimer:
    """Reusable context manager: one timed phase -> histogram + span.

    A single ``time.monotonic()`` pair feeds both the latency histogram
    and (when tracing) the span event, so turning tracing on does not
    change the recorded latencies.  Not re-entrant — each is owned by
    one single-threaded loop (the runner pre-resolves one per phase).
    """

    __slots__ = ("name", "_histogram", "_tracer", "_start")

    def __init__(self, name: str, histogram, tracer=None):
        self.name = name
        self._histogram = histogram
        self._tracer = tracer if tracer is not None and tracer.enabled \
            else None
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.monotonic() - self._start
        self._histogram.observe(duration)
        if self._tracer is not None:
            attrs = ({"error": exc_type.__name__}
                     if exc_type is not None else {})
            self._tracer._emit(self.name, self._start, duration, attrs)
        return False


class _NullPhaseTimer:
    """Shared no-op phase timer — the disabled hot path."""

    __slots__ = ()
    name = ""

    def __enter__(self) -> "_NullPhaseTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_PHASE = _NullPhaseTimer()


class Telemetry:
    """Registry + tracer bundle handed through the stack.

    ``Telemetry()`` enables metrics with no tracing; pass a
    :class:`Tracer` over a :class:`JsonlSink` to record spans too.
    :data:`NULL_TELEMETRY` (both parts null) is the library default.
    """

    def __init__(self, registry=None, tracer=None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()

    @property
    def enabled(self) -> bool:
        return self.registry.enabled or self.tracer.enabled

    # -- instrument passthroughs (resolve once, use on the hot path) --------
    def counter(self, name: str, **labels):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels):
        return self.registry.histogram(name, buckets=buckets, **labels)

    def phase(self, phase: str, metric: str = names.PHASE_SECONDS):
        """A pre-resolvable timer for one named phase."""
        if not self.enabled:
            return _NULL_PHASE
        return PhaseTimer(phase,
                          self.registry.histogram(metric, phase=phase),
                          self.tracer)

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)


#: The library-wide disabled default: shared no-op instruments.
NULL_TELEMETRY = Telemetry(registry=NullRegistry(), tracer=NullTracer())
