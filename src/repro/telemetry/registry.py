"""Thread-safe metrics: counters, gauges, and latency histograms.

The registry is the campaign's single source of quantitative truth —
the paper's throughput claim (§3.4: "5,000 to 20,000 statements per
second") and distribution figures are only checkable if the running
hunt counts what it does.  Design constraints, in order:

1. **Hot-path cost.**  ``Counter.inc`` is a lock acquire, an add, and a
   release; ``Histogram.observe`` adds one bisect.  Instruments are
   resolved *once* (at runner construction) and cached, so the PQS loop
   never touches the registry dict while hunting.  The disabled path
   (:class:`NullRegistry`) hands out shared no-op instruments whose
   methods are empty — instrumented-but-off code stays within noise of
   uninstrumented code.
2. **Thread safety.**  Each instrument carries its own lock;
   :class:`~repro.campaigns.parallel.ParallelCampaign` workers may share
   a registry or merge per-worker snapshots (:meth:`MetricsRegistry
   .merge_snapshot`), both of which must be race-free.
3. **Exportability.**  ``snapshot()`` is plain JSON (round-trippable via
   :meth:`MetricsRegistry.from_snapshot`); ``to_prometheus()`` renders
   the conventional text exposition format so a long-running hunt can be
   scraped.

Histograms keep exact ``count``/``sum``/``min``/``max`` and exact
cumulative bucket counts, plus a bounded sample reservoir for
percentile math.  When the reservoir fills it is decimated
deterministically (every second sample kept, the admission stride
doubled) — no randomness, so runs stay reproducible, and memory stays
O(cap) regardless of campaign length.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Iterable, Optional

#: Default latency buckets, in seconds: sub-millisecond through tens of
#: seconds — spans the oracle interpreter (~µs) to a watchdog deadline.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Reservoir capacity per histogram before deterministic decimation.
RESERVOIR_CAP = 4096


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _escape_label_value(value) -> str:
    """Prometheus exposition escaping for a quoted label value:
    backslash, double quote, and line feed."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """``# HELP`` escaping: backslash and line feed only (quotes are
    legal in help text)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Optional[dict] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def to_json(self) -> dict:
        return {"value": self.value}

    def absorb(self, data: dict) -> None:
        self.inc(data.get("value", 0))


class Gauge:
    """A value that goes up and down (e.g. rounds remaining)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Optional[dict] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_json(self) -> dict:
        return {"value": self.value}

    def absorb(self, data: dict) -> None:
        # Merging gauges across workers: sum (a merged gauge is a total,
        # e.g. in-flight work across the fleet).
        self.inc(data.get("value", 0.0))


class Histogram:
    """Latency distribution: exact moments + bounded percentile samples."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "_lock", "_bucket_counts",
                 "_count", "_sum", "_min", "_max", "_samples", "_stride",
                 "_pending")

    def __init__(self, name: str, labels: Optional[dict] = None,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._bucket_counts = [0] * len(self.buckets)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: list[float] = []
        #: Every ``stride``-th observation enters the reservoir.
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            index = bisect_left(self.buckets, value)
            if index < len(self._bucket_counts):
                self._bucket_counts[index] += 1
            self._pending += 1
            if self._pending >= self._stride:
                self._pending = 0
                self._samples.append(value)
                if len(self._samples) >= RESERVOIR_CAP:
                    # Deterministic decimation: thin to every other
                    # sample, admit half as often from now on.
                    self._samples = self._samples[::2]
                    self._stride *= 2

    # -- reading ------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile (``p`` in [0, 100]) over the
        sample reservoir; exact until the reservoir first decimates."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        rank = (p / 100.0) * (len(samples) - 1)
        low = int(rank)
        high = min(low + 1, len(samples) - 1)
        frac = rank - low
        return samples[low] * (1.0 - frac) + samples[high] * frac

    def to_json(self) -> dict:
        with self._lock:
            return {
                "count": self._count, "sum": self._sum,
                "min": self._min, "max": self._max,
                "buckets": list(self.buckets),
                "bucket_counts": list(self._bucket_counts),
                "samples": list(self._samples),
                "stride": self._stride,
            }

    def absorb(self, data: dict) -> None:
        """Merge a snapshot of another histogram (same bucket layout)."""
        with self._lock:
            self._count += data.get("count", 0)
            self._sum += data.get("sum", 0.0)
            for bound in ("min", "max"):
                theirs = data.get(bound)
                if theirs is None:
                    continue
                mine = self._min if bound == "min" else self._max
                if mine is None:
                    better = theirs
                else:
                    better = min(mine, theirs) if bound == "min" \
                        else max(mine, theirs)
                if bound == "min":
                    self._min = better
                else:
                    self._max = better
            counts = data.get("bucket_counts", [])
            if tuple(data.get("buckets", self.buckets)) == self.buckets:
                for i, n in enumerate(counts[:len(self._bucket_counts)]):
                    self._bucket_counts[i] += n
            self._samples.extend(data.get("samples", []))
            while len(self._samples) >= RESERVOIR_CAP:
                self._samples = self._samples[::2]
                self._stride *= 2


_INSTRUMENT_KINDS = {"counter": Counter, "gauge": Gauge,
                     "histogram": Histogram}


class MetricsRegistry:
    """Process-wide instrument store, keyed by (name, labels)."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, tuple], object] = {}

    # -- instrument access --------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = Histogram(name, labels, buckets)
                self._instruments[key] = instrument
            if not isinstance(instrument, Histogram):
                raise TypeError(f"{name} already registered as "
                                f"{instrument.kind}")
            return instrument

    def _get(self, cls, name: str, labels: dict):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, labels)
                self._instruments[key] = instrument
            if not isinstance(instrument, cls):
                raise TypeError(f"{name} already registered as "
                                f"{instrument.kind}")
            return instrument

    # -- aggregate reads ----------------------------------------------------
    def instruments(self) -> list:
        with self._lock:
            return list(self._instruments.values())

    def value(self, name: str) -> float:
        """Sum of a counter/gauge family across all label sets."""
        return sum(i.value for i in self.instruments()
                   if i.name == name and i.kind in ("counter", "gauge"))

    # -- export -------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe dump of every instrument, keyed
        ``name{label="v"}`` -> ``{"kind": ..., **state}``."""
        out: dict[str, dict] = {}
        for instrument in self.instruments():
            key = instrument.name + _render_labels(instrument.labels)
            out[key] = {"kind": instrument.kind,
                        "labels": dict(instrument.labels),
                        **instrument.to_json()}
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one
        (parallel campaigns merge per-worker snapshots this way)."""
        for key, data in snapshot.items():
            kind = data.get("kind")
            if kind not in _INSTRUMENT_KINDS:
                continue
            name = key.split("{", 1)[0]
            labels = data.get("labels", {})
            if kind == "counter":
                self.counter(name, **labels).absorb(data)
            elif kind == "gauge":
                self.gauge(name, **labels).absorb(data)
            else:
                buckets = tuple(data.get("buckets", DEFAULT_BUCKETS))
                self.histogram(name, buckets=buckets,
                               **labels).absorb(data)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (one scrape page).

        Conformance points (audited against the exposition-format
        spec): ``# HELP`` before ``# TYPE`` per family, label values
        escaped (backslash, quote, newline), histograms with cumulative
        ``le`` buckets ending in ``+Inf`` plus ``_sum``/``_count``
        series, non-finite values rendered ``+Inf``/``-Inf``/``NaN``,
        and a trailing newline.
        """
        from repro.telemetry import names as metric_names

        lines: list[str] = []
        by_name: dict[str, list] = {}
        for instrument in self.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
        for name in sorted(by_name):
            family = by_name[name]
            help_text = metric_names.HELP.get(name)
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {family[0].kind}")
            for instrument in family:
                rendered = _render_labels(instrument.labels)
                if instrument.kind in ("counter", "gauge"):
                    lines.append(f"{name}{rendered} "
                                 f"{_fmt(instrument.value)}")
                    continue
                state = instrument.to_json()
                cumulative = 0
                for bound, count in zip(state["buckets"],
                                        state["bucket_counts"]):
                    cumulative += count
                    labels = dict(instrument.labels)
                    labels["le"] = _fmt(bound)
                    lines.append(f"{name}_bucket{_render_labels(labels)} "
                                 f"{cumulative}")
                labels = dict(instrument.labels)
                labels["le"] = "+Inf"
                lines.append(f"{name}_bucket{_render_labels(labels)} "
                             f"{state['count']}")
                lines.append(f"{name}_sum{rendered} {_fmt(state['sum'])}")
                lines.append(f"{name}_count{rendered} {state['count']}")
        return "\n".join(lines) + "\n" if lines else ""


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


# -- disabled mode ----------------------------------------------------------
class NullCounter:
    kind = "counter"
    name = ""
    labels: dict = {}
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class NullGauge:
    kind = "gauge"
    name = ""
    labels: dict = {}
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullHistogram:
    kind = "histogram"
    name = ""
    labels: dict = {}
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Shared no-op instruments; the default when telemetry is off."""

    enabled = False

    def counter(self, name: str, **labels) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS,
                  **labels) -> NullHistogram:
        return _NULL_HISTOGRAM

    def instruments(self) -> list:
        return []

    def value(self, name: str) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return "{}"

    def merge_snapshot(self, snapshot: dict) -> None:
        pass

    def to_prometheus(self) -> str:
        return ""
