"""Span-based tracing: what the hunt did, when, and for how long.

A :class:`Tracer` hands out :class:`Span` context managers; closing a
span emits one JSON event to the configured sink.  Timing uses the
monotonic clock (wall-clock steps must never produce negative phase
latencies); each event also carries a wall-clock timestamp derived from
a single anchor taken at tracer construction, so traces from different
workers line up on one timeline.

Event schema (one JSON object per line in a :class:`JsonlSink` file)::

    {"kind": "span", "name": "containment", "seq": 17, "t": 1.0421,
     "wall": 1754489000.12, "dur": 0.00031, "attrs": {"oracle": "ok"}}

``seq`` orders events by *emission* (span close); nested spans therefore
emit child-before-parent, the conventional trace layout.  ``t`` is
seconds since the tracer started.

**Context attributes** (:meth:`Tracer.context`) are thread-local
key/values merged into every event the thread emits while the context
is open.  The campaign executor binds ``worker``/``round``/
``round_seed`` around each round, so a shared multi-worker tracer's
spans join against journal lines and the campaign event log on exactly
the keys those artifacts carry — explicit per-event attrs win over
context on collision.

The disabled path is :class:`NullTracer`: ``span()`` returns one shared
no-op context manager, so an instrumented-but-off hot loop costs two
empty method calls per span.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Optional


class JsonlSink:
    """Appends one JSON object per line to a file, under a lock."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "w", encoding="utf-8")

    def write(self, event: dict) -> None:
        line = json.dumps(event) + "\n"
        with self._lock:
            if self._handle is not None:
                self._handle.write(line)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None


class ListSink:
    """Collects events in memory (tests, progress introspection)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        with self._lock:
            self.events.append(event)

    def close(self) -> None:
        pass


class Span:
    """One timed operation; emits on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def set(self, key: str, value) -> None:
        """Attach an attribute discovered mid-span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.monotonic()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._emit(self.name, self._start, end - self._start,
                           self.attrs)
        return False


class _TraceContext:
    """Context manager scoping thread-local attributes on a tracer."""

    __slots__ = ("_tracer", "_attrs", "_saved")

    def __init__(self, tracer: "Tracer", attrs: dict):
        self._tracer = tracer
        self._attrs = attrs
        self._saved: dict = {}

    def __enter__(self) -> "_TraceContext":
        local = self._tracer._local
        self._saved = getattr(local, "attrs", {})
        local.attrs = {**self._saved, **self._attrs}
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._local.attrs = self._saved
        return False


class Tracer:
    """Emits span events to a sink; cheap enough to leave on."""

    enabled = True

    def __init__(self, sink):
        self.sink = sink
        self._lock = threading.Lock()
        self._seq = 0
        #: Monotonic instant the tracer was born — ``t`` origin.
        self._origin = time.monotonic()
        #: Wall-clock anchor for the same instant.
        self._wall_anchor = time.time() - self._origin
        #: Thread-local context attributes (see :meth:`context`).
        self._local = threading.local()

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """An instantaneous (zero-duration) event."""
        now = time.monotonic()
        self._emit(name, now, 0.0, attrs, kind="event")

    def context(self, **attrs) -> _TraceContext:
        """Bind *attrs* to every event this thread emits inside the
        ``with`` block (nests; inner bindings shadow outer ones)."""
        return _TraceContext(self, attrs)

    def current_context(self) -> dict:
        """This thread's active context attributes (empty when none)."""
        return dict(getattr(self._local, "attrs", {}))

    def _emit(self, name: str, start: float, duration: float,
              attrs: dict, kind: str = "span") -> None:
        with self._lock:
            seq = self._seq
            self._seq += 1
        context = getattr(self._local, "attrs", None)
        if context:
            attrs = {**context, **attrs}
        event = {"kind": kind, "name": name, "seq": seq,
                 "t": round(start - self._origin, 6),
                 "wall": round(self._wall_anchor + start, 6),
                 "dur": round(duration, 6)}
        if attrs:
            event["attrs"] = attrs
        self.sink.write(event)


class _NullSpan:
    """Shared do-nothing span."""

    __slots__ = ()
    name = ""

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _NullContext:
    """Shared do-nothing trace context."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The default tracer: emits nothing, costs (almost) nothing."""

    enabled = False
    sink: Optional[JsonlSink] = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def context(self, **attrs) -> _NullContext:
        return _NULL_CONTEXT

    def current_context(self) -> dict:
        return {}
