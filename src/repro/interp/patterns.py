"""LIKE and GLOB pattern matching.

The paper notes the LIKE implementation alone is over 50 LOC in SQLancer;
several of the SQLite bugs it found (Listing 7) involve LIKE's interaction
with affinity and collation, so getting these exactly right matters.

``like_match`` implements SQL LIKE: ``%`` matches any sequence (including
empty), ``_`` matches exactly one character, and an optional escape
character quotes the next character.  Case sensitivity is a parameter
because dialects differ (SQLite: ASCII-case-insensitive by default;
PostgreSQL: case-sensitive; MySQL: case-insensitive under the default
collation).

``glob_match`` implements SQLite GLOB: ``*``, ``?`` and ``[...]`` character
classes (with ``^`` negation and ``a-z`` ranges), always case-sensitive.
"""

from __future__ import annotations

from functools import lru_cache


def _ascii_fold(c: str) -> str:
    if "A" <= c <= "Z":
        return chr(ord(c) + 32)
    return c


def like_match(text: str, pattern: str, case_sensitive: bool = False,
               escape: str | None = None) -> bool:
    """Match *text* against a SQL LIKE *pattern*."""
    if not case_sensitive:
        text = "".join(_ascii_fold(c) for c in text)
        pattern = "".join(
            c if escape is not None and c == escape else _ascii_fold(c)
            for c in pattern
        )
    return _like(text, 0, pattern, 0, escape)


def _like(text: str, ti: int, pat: str, pi: int, escape: str | None) -> bool:
    tn, pn = len(text), len(pat)
    while pi < pn:
        c = pat[pi]
        if escape is not None and c == escape:
            if pi + 1 >= pn:
                return False  # dangling escape matches nothing
            pi += 1
            if ti >= tn or text[ti] != pat[pi]:
                return False
            ti += 1
            pi += 1
        elif c == "%":
            # Collapse consecutive wildcards, then try every suffix.
            while pi < pn and pat[pi] in "%":
                pi += 1
            if pi == pn:
                return True
            for start in range(ti, tn + 1):
                if _like(text, start, pat, pi, escape):
                    return True
            return False
        elif c == "_":
            if ti >= tn:
                return False
            ti += 1
            pi += 1
        else:
            if ti >= tn or text[ti] != c:
                return False
            ti += 1
            pi += 1
    return ti == tn


def glob_match(text: str, pattern: str) -> bool:
    """Match *text* against a SQLite GLOB *pattern* (case-sensitive)."""
    return _glob(text, 0, pattern, 0)


def _glob(text: str, ti: int, pat: str, pi: int) -> bool:
    tn, pn = len(text), len(pat)
    while pi < pn:
        c = pat[pi]
        if c == "*":
            while pi < pn and pat[pi] == "*":
                pi += 1
            if pi == pn:
                return True
            for start in range(ti, tn + 1):
                if _glob(text, start, pat, pi):
                    return True
            return False
        if c == "?":
            if ti >= tn:
                return False
            ti += 1
            pi += 1
            continue
        if c == "[":
            if ti >= tn:
                return False
            matched, next_pi = _match_class(text[ti], pat, pi)
            if not matched:
                return False
            ti += 1
            pi = next_pi
            continue
        if ti >= tn or text[ti] != c:
            return False
        ti += 1
        pi += 1
    return ti == tn


def _match_class(ch: str, pat: str, pi: int) -> tuple[bool, int]:
    """Match one character against ``[...]`` starting at ``pat[pi] == '['``.

    Returns ``(matched, index_after_class)``.  An unterminated class never
    matches (SQLite behaviour).
    """
    i = pi + 1
    n = len(pat)
    negate = False
    if i < n and pat[i] == "^":
        negate = True
        i += 1
    matched = False
    first = True
    while i < n and (pat[i] != "]" or first):
        first = False
        if i + 2 < n and pat[i + 1] == "-" and pat[i + 2] != "]":
            if pat[i] <= ch <= pat[i + 2]:
                matched = True
            i += 3
        else:
            if pat[i] == ch:
                matched = True
            i += 1
    if i >= n:
        return False, n  # unterminated class
    return matched != negate, i + 1


@lru_cache(maxsize=4096)
def like_match_cached(text: str, pattern: str, case_sensitive: bool,
                      escape: str | None) -> bool:
    """Memoized LIKE used by hot engine paths (same inputs recur in scans)."""
    return like_match(text, pattern, case_sensitive, escape)
