"""Scalar SQL function implementations shared by the dialect semantics.

The function surface is deliberately the subset SQLancer modeled exactly:
the paper notes it skipped functions that would have required large
implementation effort (e.g. ``printf``), and the generator only emits
functions the oracle interpreter models.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.interp.base import EvalError
from repro.values import NULL, SQLType, Value, fits_int64

if TYPE_CHECKING:  # pragma: no cover
    from repro.interp.sqlite_sem import SQLiteSemantics


#: name -> (min_arity, max_arity); max of None means unbounded.
SQLITE_FUNCTIONS: dict[str, tuple[int, int | None]] = {
    "ABS": (1, 1),
    "COALESCE": (2, None),
    "HEX": (1, 1),
    "IFNULL": (2, 2),
    "INSTR": (2, 2),
    "LENGTH": (1, 1),
    "LOWER": (1, 1),
    "LTRIM": (1, 2),
    "MAX": (2, None),
    "MIN": (2, None),
    "NULLIF": (2, 2),
    "ROUND": (1, 2),
    "RTRIM": (1, 2),
    "SUBSTR": (2, 3),
    "TRIM": (1, 2),
    "TYPEOF": (1, 1),
    "UPPER": (1, 1),
}

MYSQL_FUNCTIONS: dict[str, tuple[int, int | None]] = {
    "ABS": (1, 1),
    "COALESCE": (2, None),
    "GREATEST": (2, None),
    "IFNULL": (2, 2),
    "INSTR": (2, 2),
    "LEAST": (2, None),
    "LENGTH": (1, 1),
    "LOWER": (1, 1),
    "NULLIF": (2, 2),
    "ROUND": (1, 2),
    "SUBSTR": (2, 3),
    "UPPER": (1, 1),
}

POSTGRES_FUNCTIONS: dict[str, tuple[int, int | None]] = {
    "ABS": (1, 1),
    "COALESCE": (2, None),
    "GREATEST": (2, None),
    "LEAST": (2, None),
    "LENGTH": (1, 1),
    "LOWER": (1, 1),
    "NULLIF": (2, 2),
    "UPPER": (1, 1),
}


def check_arity(catalog: dict[str, tuple[int, int | None]], name: str,
                nargs: int) -> None:
    try:
        lo, hi = catalog[name.upper()]
    except KeyError:
        raise EvalError(f"no such function: {name}") from None
    if nargs < lo or (hi is not None and nargs > hi):
        raise EvalError(f"wrong number of arguments to function {name}()")


def call_sqlite_function(sem: "SQLiteSemantics", name: str,
                         args: list[Value],
                         first_arg_collation: str | None = None) -> Value:
    from repro.interp.sqlite_sem import (
        storage_compare,
        to_int64,
        to_numeric,
        to_text,
    )

    check_arity(SQLITE_FUNCTIONS, name, len(args))
    fn = name.upper()
    collation = first_arg_collation or "BINARY"

    if fn == "TYPEOF":
        v = args[0]
        if v.t is SQLType.BOOLEAN:
            return Value.text("integer")
        return Value.text(v.t.value)

    if fn == "COALESCE":
        for v in args:
            if not v.is_null:
                return v
        return NULL

    if fn == "IFNULL":
        return args[0] if not args[0].is_null else args[1]

    if fn == "NULLIF":
        a, b = args
        if a.is_null or b.is_null:
            return a
        if storage_compare(a, b, collation) == 0:
            return NULL
        return a

    if fn in ("MIN", "MAX"):
        # Scalar min/max compare with the collation of the *first* argument.
        # Tie behaviour follows SQLite's `(cmp ^ mask) >= 0` update rule:
        # MIN keeps the *last* of equal arguments, MAX keeps the *first*.
        if any(v.is_null for v in args):
            return NULL
        best = args[0]
        for v in args[1:]:
            cmp = storage_compare(v, best, collation)
            if (fn == "MIN" and cmp <= 0) or (fn == "MAX" and cmp > 0):
                best = v
        return best

    if fn == "ABS":
        v = args[0]
        if v.is_null:
            return NULL
        if v.t is SQLType.INTEGER or v.t is SQLType.BOOLEAN:
            i = abs(to_int64(v))  # type: ignore[arg-type]
            if not fits_int64(i):
                raise EvalError("integer overflow")
            return Value.integer(i)
        # REAL, TEXT and BLOB arguments all produce a REAL result
        # (abs('380') is 380.0, abs(X'6162') is 0.0).
        num = to_numeric(v)
        assert num is not None
        return Value.real(abs(float(num)))

    if fn == "LENGTH":
        v = args[0]
        if v.is_null:
            return NULL
        if v.t is SQLType.BLOB:
            return Value.integer(len(bytes(v.v)))
        return Value.integer(len(to_text(v)))

    if fn in ("LOWER", "UPPER"):
        v = args[0]
        if v.is_null:
            return NULL
        text = to_text(v)
        folded = _ascii_case(text, lower=(fn == "LOWER"))
        return Value.text(folded)

    if fn in ("TRIM", "LTRIM", "RTRIM"):
        return _trim(fn, args)

    if fn == "SUBSTR":
        return _substr(args)

    if fn == "INSTR":
        a, b = args
        if a.is_null or b.is_null:
            return NULL
        return Value.integer(to_text(a).find(to_text(b)) + 1)

    if fn == "ROUND":
        v = args[0]
        num = to_numeric(v)
        if num is None:
            return NULL
        digits = 0
        if len(args) == 2:
            d = to_int64(args[1])
            if d is None:
                return NULL
            digits = max(0, min(30, d))
        return Value.real(_sqlite_round(float(num), digits))

    if fn == "HEX":
        v = args[0]
        if v.is_null:
            return Value.text("")
        if v.t is SQLType.BLOB:
            return Value.text(bytes(v.v).hex().upper())
        return Value.text(to_text(v).encode("utf-8").hex().upper())

    raise EvalError(f"no such function: {name}")


def _ascii_case(text: str, lower: bool) -> str:
    out = []
    for c in text:
        if lower and "A" <= c <= "Z":
            out.append(chr(ord(c) + 32))
        elif not lower and "a" <= c <= "z":
            out.append(chr(ord(c) - 32))
        else:
            out.append(c)
    return "".join(out)


def _trim(fn: str, args: list[Value]) -> Value:
    from repro.interp.sqlite_sem import to_text

    v = args[0]
    if v.is_null:
        return NULL
    chars = " "
    if len(args) == 2:
        if args[1].is_null:
            return NULL
        chars = to_text(args[1])
    text = to_text(v)
    if not chars:
        return Value.text(text)
    if fn in ("TRIM", "LTRIM"):
        text = text.lstrip(chars)
    if fn in ("TRIM", "RTRIM"):
        text = text.rstrip(chars)
    return Value.text(text)


def _substr(args: list[Value]) -> Value:
    from repro.interp.sqlite_sem import to_int64, to_text

    v = args[0]
    if any(a.is_null for a in args):
        return NULL
    # SUBSTR on a BLOB slices bytes and returns a BLOB; an *empty* BLOB
    # input yields NULL (SQLite's blob pointer is NULL for zero bytes and
    # substrFunc bails out without setting a result).
    if v.t is SQLType.BLOB:
        seq: str | bytes = bytes(v.v)
        if not seq:
            return NULL
    else:
        seq = to_text(v)
    start = to_int64(args[1]) or 0
    length = None
    if len(args) == 3:
        length = to_int64(args[2])
    out = _slice_substr(seq, start, length)
    if isinstance(out, bytes):
        return Value.blob(out)
    return Value.text(out)


def _slice_substr(seq: str | bytes, p1: int,
                  length: int | None) -> str | bytes:
    """Transliteration of SQLite's ``substrFunc`` index arithmetic.

    1-based indexing; a negative start counts from the end, and when it
    overshoots the beginning the requested length is *reduced* by the
    overshoot (``SUBSTR('abc', -5, 3)`` yields ``'a'``); a negative length
    takes characters before the start position.
    """
    n = len(seq)
    if length is None:
        # The 2-argument form behaves like an effectively unbounded
        # length (SQLite uses the max string size), which matters for
        # the p1==0 "consume one unit of length" rule.
        p2 = 2**62
        neg_p2 = False
    else:
        neg_p2 = length < 0
        p2 = -length if neg_p2 else length
    if p1 < 0:
        p1 += n
        if p1 < 0:
            if not neg_p2:
                p2 += p1
                if p2 < 0:
                    p2 = 0
            p1 = 0
    elif p1 > 0:
        p1 -= 1
    elif p2 > 0:
        p2 -= 1
    if neg_p2:
        p1 -= p2
        if p1 < 0:
            p2 += p1
            p1 = 0
    if p1 + p2 > n:
        p2 = n - p1
        if p2 < 0:
            p2 = 0
    return seq[p1:p1 + p2]


def _sqlite_round(x: float, digits: int) -> float:
    """SQLite's round(): decimal-string based, half away from zero.

    SQLite formats the value through its own printf (≈15 significant
    decimal digits) and re-parses, so ``round(0.15, 1)`` is ``0.2`` even
    though 0.15's binary value is slightly below 0.15.  We mirror that by
    rounding the 15-significant-digit decimal rendering.  Exact only for
    ``digits`` within the float's precision — the generator draws small
    digit counts (0–8), matching SQLancer's modeled fragment.
    """
    import decimal

    if math.isinf(x) or math.isnan(x):
        return x
    if x < -4503599627370496.0 or x > 4503599627370496.0:
        # No fractional part representable; nothing to round.
        return x
    if digits == 0:
        if x >= 0:
            return float(int(x + 0.5))
        return float(-int(-x + 0.5))
    quantum = decimal.Decimal(1).scaleb(-digits)
    dec = decimal.Decimal(format(x, ".15g"))
    out = dec.quantize(quantum, rounding=decimal.ROUND_HALF_UP)
    return float(out)
