"""PostgreSQL-style value semantics.

PostgreSQL "performs only few implicit conversions" (paper §2) — the paper
attributes the low PQS bug yield on PostgreSQL to this strictness.  This
module models that strictness:

* boolean is a first-class type, and only booleans are accepted in boolean
  contexts (the generator must produce a boolean-typed root, paper §3.2);
* comparisons require compatible types, otherwise the engine reports
  ``operator does not exist`` (an *expected* error for the error oracle);
* division by zero is an error, not NULL;
* ``LEAST``/``GREATEST`` ignore NULL arguments (unlike MySQL);
* LIKE is case-sensitive.

Errors raised here are :class:`EvalError`; the generator discards such
expressions, mirroring how SQLancer's PostgreSQL generator constrains
itself to well-typed trees.
"""

from __future__ import annotations

import math

from repro.interp.base import EvalError, Semantics, Ternary
from repro.interp.patterns import like_match
from repro.sqlast.nodes import BinaryOp, Expr
from repro.values import (
    FALSE,
    INT64_MAX,
    INT64_MIN,
    NULL,
    TRUE,
    SQLType,
    Value,
    collate_binary,
    compare_blobs,
    compare_numbers,
    fits_int64,
    format_real,
)


class PostgresSemantics(Semantics):
    """PostgreSQL dialect semantics (see module docstring)."""

    name = "postgres"

    # -- boolean context -----------------------------------------------------
    def to_bool(self, v: Value) -> Ternary:
        if v.t is SQLType.NULL:
            return None
        if v.t is SQLType.BOOLEAN:
            return bool(v.v)
        raise EvalError(f"argument of WHERE must be type boolean, "
                        f"not type {v.t.value}")

    def bool_value(self, b: Ternary) -> Value:
        if b is None:
            return NULL
        return TRUE if b else FALSE

    # -- comparisons -----------------------------------------------------------
    def compare(self, op: BinaryOp, left: Expr, lv: Value,
                right: Expr, rv: Value) -> Ternary:
        if op is BinaryOp.NULL_SAFE_EQ:
            raise EvalError("operator does not exist: <=>")
        if op in (BinaryOp.IS, BinaryOp.IS_NOT):
            # IS DISTINCT FROM semantics (PostgreSQL's null-safe comparison).
            equal = self._null_safe_equal(lv, rv)
            return not equal if op is BinaryOp.IS_NOT else equal
        if lv.is_null or rv.is_null:
            return None
        cmp = self._cmp(lv, rv)
        return _cmp_result(op, cmp)

    def _null_safe_equal(self, lv: Value, rv: Value) -> bool:
        if lv.is_null and rv.is_null:
            return True
        if lv.is_null or rv.is_null:
            return False
        return self._cmp(lv, rv) == 0

    def compile_compare(self, op: BinaryOp, left: Expr,
                        right: Expr | None):
        """PostgreSQL comparisons ignore the operand expressions, so a
        site compiles to one-time op dispatch plus per-call null checks
        and ``_cmp``.  Subclasses overriding :meth:`compare` fall back
        to the generic per-call path."""
        if type(self).compare is not PostgresSemantics.compare:
            return super().compile_compare(op, left, right)
        cmp = self._cmp
        null_t = SQLType.NULL
        if op is BinaryOp.NULL_SAFE_EQ:
            def no_such_op(lv: Value, rv: Value) -> Ternary:
                raise EvalError("operator does not exist: <=>")
            return no_such_op
        if op in (BinaryOp.IS, BinaryOp.IS_NOT):
            negate = op is BinaryOp.IS_NOT

            def null_safe(lv: Value, rv: Value) -> bool:
                ln = lv.t is null_t
                rn = rv.t is null_t
                equal = (ln and rn) if (ln or rn) else cmp(lv, rv) == 0
                return not equal if negate else equal
            return null_safe
        result = _CMP_FUNCS[op]

        def ordered(lv: Value, rv: Value) -> Ternary:
            if lv.t is null_t or rv.t is null_t:
                return None
            return result(cmp(lv, rv))
        return ordered

    @staticmethod
    def _cmp(a: Value, b: Value) -> int:
        if a.is_numeric and b.is_numeric:
            if (a.t is SQLType.BOOLEAN) != (b.t is SQLType.BOOLEAN):
                raise EvalError(
                    f"operator does not exist: {a.t.value} = {b.t.value}")
            an = int(a.v) if a.t is SQLType.BOOLEAN else a.v
            bn = int(b.v) if b.t is SQLType.BOOLEAN else b.v
            return compare_numbers(an, bn)  # type: ignore[arg-type]
        if a.t is SQLType.TEXT and b.t is SQLType.TEXT:
            return collate_binary(str(a.v), str(b.v))
        if a.t is SQLType.BLOB and b.t is SQLType.BLOB:
            return compare_blobs(bytes(a.v), bytes(b.v))
        raise EvalError(f"operator does not exist: {a.t.value} = {b.t.value}")

    # -- arithmetic ------------------------------------------------------------
    def arithmetic(self, op: BinaryOp, a: Value, b: Value) -> Value:
        if a.is_null or b.is_null:
            return NULL
        x = self._require_number(a)
        y = self._require_number(b)
        if op is BinaryOp.DIV:
            if isinstance(x, int) and isinstance(y, int):
                if y == 0:
                    raise EvalError("division by zero")
                q = abs(x) // abs(y)
                return self._int_result(-q if (x < 0) != (y < 0) else q)
            if float(y) == 0.0:
                raise EvalError("division by zero")
            return Value.real(float(x) / float(y))
        if op is BinaryOp.MOD:
            if not (isinstance(x, int) and isinstance(y, int)):
                raise EvalError("operator does not exist: double % double")
            if y == 0:
                raise EvalError("division by zero")
            r = abs(x) % abs(y)
            return Value.integer(-r if x < 0 else r)
        if isinstance(x, int) and isinstance(y, int):
            result = {BinaryOp.ADD: x + y, BinaryOp.SUB: x - y,
                      BinaryOp.MUL: x * y}[op]
            return self._int_result(result)
        fx, fy = float(x), float(y)
        return Value.real({BinaryOp.ADD: fx + fy, BinaryOp.SUB: fx - fy,
                           BinaryOp.MUL: fx * fy}[op])

    @staticmethod
    def _int_result(i: int) -> Value:
        if not fits_int64(i):
            raise EvalError("bigint out of range")
        return Value.integer(i)

    @staticmethod
    def _require_number(v: Value) -> int | float:
        if v.t is SQLType.INTEGER:
            return int(v.v)
        if v.t is SQLType.REAL:
            return float(v.v)
        raise EvalError(f"operator does not exist: {v.t.value} arithmetic")

    def bitwise(self, op: BinaryOp, a: Value, b: Value) -> Value:
        if a.is_null or b.is_null:
            return NULL
        if a.t is not SQLType.INTEGER or b.t is not SQLType.INTEGER:
            raise EvalError("operator does not exist: bitwise on non-integers")
        x, y = int(a.v), int(b.v)
        if op is BinaryOp.BITAND:
            return Value.integer(x & y)
        if op is BinaryOp.BITOR:
            return Value.integer(x | y)
        # PostgreSQL shifts use the count modulo the width (int8 → mod 64).
        shift = y % 64
        if op is BinaryOp.SHL:
            return Value.integer(_wrap64(x << shift))
        if op is BinaryOp.SHR:
            return Value.integer(x >> shift)
        raise EvalError(f"not a bitwise op: {op}")

    def negate(self, v: Value) -> Value:
        if v.is_null:
            return NULL
        num = self._require_number(v)
        if isinstance(num, int):
            return self._int_result(-num)
        return Value.real(-num)

    def bitnot(self, v: Value) -> Value:
        if v.is_null:
            return NULL
        if v.t is not SQLType.INTEGER:
            raise EvalError("operator does not exist: ~ non-integer")
        return Value.integer(_wrap64(~int(v.v)))

    # -- strings -----------------------------------------------------------
    def concat(self, a: Value, b: Value) -> Value:
        if a.is_null or b.is_null:
            return NULL
        if a.t is not SQLType.TEXT or b.t is not SQLType.TEXT:
            raise EvalError("operator does not exist: || on non-text")
        return Value.text(str(a.v) + str(b.v))

    def like(self, text: Value, pattern: Value) -> Ternary:
        if text.is_null or pattern.is_null:
            return None
        if text.t is not SQLType.TEXT or pattern.t is not SQLType.TEXT:
            raise EvalError("operator does not exist: LIKE on non-text")
        return like_match(str(text.v), str(pattern.v), case_sensitive=True,
                          escape="\\")

    def glob(self, text: Value, pattern: Value) -> Ternary:
        raise EvalError("GLOB is not supported by PostgreSQL")

    # -- casts ------------------------------------------------------------
    def cast(self, v: Value, type_name: str) -> Value:
        if v.is_null:
            return NULL
        upper = type_name.upper()
        if upper in ("INT", "INT4", "INT8", "BIGINT", "INTEGER"):
            if v.t is SQLType.INTEGER:
                return v
            if v.t is SQLType.REAL:
                return self._int_result(_round_half_even(float(v.v)))
            if v.t is SQLType.BOOLEAN:
                return Value.integer(1 if v.v else 0)
            if v.t is SQLType.TEXT:
                stripped = str(v.v).strip()
                if _is_int_literal(stripped):
                    return self._int_result(int(stripped))
                raise EvalError(
                    f"invalid input syntax for type integer: \"{v.v}\"")
            raise EvalError(f"cannot cast type {v.t.value} to integer")
        if upper in ("FLOAT8", "FLOAT", "DOUBLE PRECISION", "REAL"):
            if v.t is SQLType.REAL:
                return v
            if v.t is SQLType.INTEGER:
                return Value.real(float(v.v))
            if v.t is SQLType.TEXT:
                try:
                    return Value.real(float(str(v.v).strip()))
                except ValueError:
                    raise EvalError("invalid input syntax for type double "
                                    f"precision: \"{v.v}\"") from None
            raise EvalError(f"cannot cast type {v.t.value} to double precision")
        if upper == "TEXT":
            if v.t is SQLType.TEXT:
                return v
            if v.t is SQLType.INTEGER:
                return Value.text(str(v.v))
            if v.t is SQLType.REAL:
                return Value.text(format_real(float(v.v)))
            if v.t is SQLType.BOOLEAN:
                return Value.text("true" if v.v else "false")
            raise EvalError(f"cannot cast type {v.t.value} to text")
        if upper in ("BOOL", "BOOLEAN"):
            if v.t is SQLType.BOOLEAN:
                return v
            if v.t is SQLType.INTEGER:
                return Value.boolean(int(v.v) != 0)
            raise EvalError(f"cannot cast type {v.t.value} to boolean")
        raise EvalError(f"unknown CAST target: {type_name}")

    # -- functions -----------------------------------------------------------
    def call(self, name: str, args: list[Value],
             first_arg_collation: str | None = None) -> Value:
        from repro.interp.functions import POSTGRES_FUNCTIONS, check_arity

        check_arity(POSTGRES_FUNCTIONS, name, len(args))
        fn = name.upper()
        if fn == "COALESCE":
            for v in args:
                if not v.is_null:
                    return v
            return NULL
        if fn == "NULLIF":
            a, b = args
            if a.is_null or b.is_null:
                return a
            if self._cmp(a, b) == 0:
                return NULL
            return a
        if fn in ("LEAST", "GREATEST"):
            # PostgreSQL ignores NULL arguments.
            present = [v for v in args if not v.is_null]
            if not present:
                return NULL
            best = present[0]
            for v in present[1:]:
                cmp = self._cmp(v, best)
                if (fn == "LEAST" and cmp < 0) or (fn == "GREATEST" and cmp > 0):
                    best = v
            return best
        if fn == "ABS":
            v = args[0]
            if v.is_null:
                return NULL
            num = self._require_number(v)
            if isinstance(num, int):
                return self._int_result(abs(num))
            return Value.real(abs(num))
        if fn == "LENGTH":
            v = args[0]
            if v.is_null:
                return NULL
            if v.t is SQLType.TEXT:
                return Value.integer(len(str(v.v)))
            if v.t is SQLType.BLOB:
                return Value.integer(len(bytes(v.v)))
            raise EvalError("function length() requires text")
        if fn in ("LOWER", "UPPER"):
            v = args[0]
            if v.is_null:
                return NULL
            if v.t is not SQLType.TEXT:
                raise EvalError(f"function {fn.lower()}() requires text")
            text = str(v.v)
            return Value.text(text.lower() if fn == "LOWER" else text.upper())
        raise EvalError(f"no such function: {name}")

    # -- row equality ------------------------------------------------------
    def values_equal(self, a: Value, b: Value) -> bool:
        if a.is_null and b.is_null:
            return True
        if a.is_null or b.is_null:
            return False
        try:
            return self._cmp(a, b) == 0
        except EvalError:
            return False


def _wrap64(i: int) -> int:
    return ((i - INT64_MIN) % (2**64)) + INT64_MIN


def _round_half_even(f: float) -> int:
    if math.isnan(f):
        raise EvalError("integer out of range")
    if f > float(INT64_MAX) or f < float(INT64_MIN):
        raise EvalError("bigint out of range")
    floor = math.floor(f)
    diff = f - floor
    if diff > 0.5:
        return floor + 1
    if diff < 0.5:
        return floor
    return floor if floor % 2 == 0 else floor + 1


def _is_int_literal(s: str) -> bool:
    if not s:
        return False
    body = s[1:] if s[0] in "+-" else s
    return body.isdigit()


_CMP_FUNCS = {
    BinaryOp.EQ: lambda cmp: cmp == 0,
    BinaryOp.NE: lambda cmp: cmp != 0,
    BinaryOp.LT: lambda cmp: cmp < 0,
    BinaryOp.LE: lambda cmp: cmp <= 0,
    BinaryOp.GT: lambda cmp: cmp > 0,
    BinaryOp.GE: lambda cmp: cmp >= 0,
}


def _cmp_result(op: BinaryOp, cmp: int) -> bool:
    if op is BinaryOp.EQ:
        return cmp == 0
    if op is BinaryOp.NE:
        return cmp != 0
    if op is BinaryOp.LT:
        return cmp < 0
    if op is BinaryOp.LE:
        return cmp <= 0
    if op is BinaryOp.GT:
        return cmp > 0
    if op is BinaryOp.GE:
        return cmp >= 0
    raise EvalError(f"not an ordering comparison: {op}")
