"""The exact expression interpreter — the oracle side of PQS.

The paper (§3, Algorithm 2) bases the containment oracle on an AST
interpreter that evaluates the randomly generated expression against the
pivot row.  "Basing the approach on an AST interpreter provides us with an
exact oracle": it operates only on literal values, never touches storage or
a query planner, and is therefore straightforward to make correct.

:class:`Interpreter` drives node dispatch; per-dialect :class:`Semantics`
subclasses implement the value-level behaviour (casts, affinity,
comparisons, pattern matching, arithmetic, functions).
"""

from repro.interp.base import EvalError, Interpreter, Row, t_and, t_not, t_or
from repro.interp.mysql_sem import MySQLSemantics
from repro.interp.postgres_sem import PostgresSemantics
from repro.interp.sqlite_sem import SQLiteSemantics

_SEMANTICS = {
    "sqlite": SQLiteSemantics,
    "mysql": MySQLSemantics,
    "postgres": PostgresSemantics,
}


def get_semantics(dialect: str):
    """Return a fresh semantics object for *dialect* (sqlite/mysql/postgres)."""
    try:
        cls = _SEMANTICS[dialect]
    except KeyError:
        raise ValueError(f"unknown dialect: {dialect!r}") from None
    return cls()


def make_interpreter(dialect: str) -> Interpreter:
    """Build an :class:`Interpreter` with the named dialect's semantics."""
    return Interpreter(get_semantics(dialect))


__all__ = [
    "EvalError",
    "Interpreter",
    "MySQLSemantics",
    "PostgresSemantics",
    "Row",
    "SQLiteSemantics",
    "get_semantics",
    "make_interpreter",
    "t_and",
    "t_not",
    "t_or",
]
