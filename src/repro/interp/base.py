"""Interpreter driver, three-valued logic, and static expression analysis.

SQL's ``WHERE`` logic is ternary: expressions evaluate to TRUE, FALSE or
NULL (unknown).  We model the logical layer with ``Optional[bool]`` (``None``
means NULL) and materialize results back into dialect values.

The driver is deliberately naive — the paper notes "all operations are
implemented naively and do not perform any optimizations, since the
bottleneck of our approach is the DBMS evaluating the queries".
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.errors import PQSError
from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    BinaryOp,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    Expr,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
)
from repro.values import NULL, Value

#: Evaluation environment: qualified column name ("t0.c0") -> stored value.
Row = Mapping[str, Value]

Ternary = Optional[bool]


class EvalError(PQSError):
    """Evaluation failed in a way the engine would also report as an error.

    Strict dialects (PostgreSQL) raise this for type mismatches and division
    by zero.  The generator treats it as "discard and redraw", since a query
    built on such an expression would error rather than mis-answer.
    """


def t_not(a: Ternary) -> Ternary:
    if a is None:
        return None
    return not a


def t_and(a: Ternary, b: Ternary) -> Ternary:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def t_or(a: Ternary, b: Ternary) -> Ternary:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


# ---------------------------------------------------------------------------
# Static analysis: affinity and collation of expressions (SQLite rules)
# ---------------------------------------------------------------------------

def expr_affinity(expr: Expr) -> Optional[str]:
    """Type affinity of an expression, per SQLite's static rules.

    Column references carry their column's affinity; ``CAST`` imposes the
    affinity of its target type; ``COLLATE`` is transparent.  Unary ``+``
    *strips* affinity — that is SQLite's documented idiom for defeating
    affinity conversion in comparisons.  Everything else has no affinity.
    """
    if isinstance(expr, ColumnNode):
        return expr.affinity
    if isinstance(expr, CastNode):
        return affinity_of_type_name(expr.type_name)
    if isinstance(expr, CollateNode):
        return expr_affinity(expr.operand)
    return None


def affinity_of_type_name(type_name: str) -> str:
    """SQLite's declared-type → affinity mapping (its §3.1 rules)."""
    upper = type_name.upper()
    if "INT" in upper:
        return "INTEGER"
    if "CHAR" in upper or "CLOB" in upper or "TEXT" in upper:
        return "TEXT"
    if "BLOB" in upper or upper == "":
        return "BLOB"
    if "REAL" in upper or "FLOA" in upper or "DOUB" in upper:
        return "REAL"
    return "NUMERIC"


def expr_collation(expr: Expr) -> tuple[Optional[str], bool]:
    """Collating sequence of an expression: ``(name, explicit)``.

    An explicit ``COLLATE`` operator anywhere in the operand wins over
    implicit column collations; this mirrors SQLite's rules for choosing
    the collating sequence of a comparison.
    """
    if isinstance(expr, CollateNode):
        return expr.collation, True
    if isinstance(expr, ColumnNode):
        return expr.collation, False
    if isinstance(expr, CastNode):
        return expr_collation(expr.operand)
    if isinstance(expr, UnaryNode) and expr.op is UnaryOp.PLUS:
        # Unary + strips *implicit* collation binding in SQLite but keeps
        # explicit COLLATE operators.
        name, explicit = expr_collation(expr.operand)
        return (name, True) if explicit else (None, False)
    return None, False


def comparison_collation(left: Expr, right: Expr) -> str:
    """The collating sequence a comparison of *left* and *right* uses."""
    lname, lexp = expr_collation(left)
    rname, rexp = expr_collation(right)
    if lexp and lname:
        return lname
    if rexp and rname:
        return rname
    if lname:
        return lname
    if rname:
        return rname
    return "BINARY"


# ---------------------------------------------------------------------------
# Semantics interface
# ---------------------------------------------------------------------------

class Semantics:
    """Dialect-specific value semantics consumed by :class:`Interpreter`.

    Subclasses implement every hook; the base class only fixes the
    interface.  All hooks receive and return :class:`Value` objects.
    """

    name = "abstract"

    def to_bool(self, v: Value) -> Ternary:
        raise NotImplementedError

    def bool_value(self, b: Ternary) -> Value:
        """Materialize a ternary logical result as a dialect value."""
        raise NotImplementedError

    def compare(self, op: BinaryOp, left: Expr, lv: Value,
                right: Expr, rv: Value) -> Ternary:
        raise NotImplementedError

    def arithmetic(self, op: BinaryOp, a: Value, b: Value) -> Value:
        raise NotImplementedError

    def bitwise(self, op, a: Value, b: Value) -> Value:
        raise NotImplementedError

    def negate(self, v: Value) -> Value:
        raise NotImplementedError

    def bitnot(self, v: Value) -> Value:
        raise NotImplementedError

    def concat(self, a: Value, b: Value) -> Value:
        raise NotImplementedError

    def like(self, text: Value, pattern: Value) -> Ternary:
        raise NotImplementedError

    def glob(self, text: Value, pattern: Value) -> Ternary:
        raise NotImplementedError

    def cast(self, v: Value, type_name: str) -> Value:
        raise NotImplementedError

    def call(self, name: str, args: list[Value],
             first_arg_collation: str | None = None) -> Value:
        """Invoke a scalar function.

        ``first_arg_collation`` carries the collating sequence of the first
        argument *expression* — SQLite's scalar MIN/MAX (and NULLIF)
        compare text using it.
        """
        raise NotImplementedError

    def values_equal(self, a: Value, b: Value) -> bool:
        """Row-membership equality used by the containment check and IN."""
        raise NotImplementedError

    def compile_compare(self, op: BinaryOp, left: Expr,
                        right: Optional[Expr],
                        ) -> Callable[[Value, Value], Ternary]:
        """Specialize :meth:`compare` for a fixed comparison site.

        The returned closure receives the two evaluated operand values and
        must behave exactly like ``compare(op, left, lv, right, rv)``.
        ``right is None`` marks an IN-list item, which :meth:`compare` sees
        as a bare literal of the evaluated value (SQLite's rule that IN
        ignores the items' own affinities).  Dialects may override this to
        hoist per-site static analysis out of the per-row path; the default
        simply defers to :meth:`compare`.
        """
        if right is None:
            def compare_literal(lv: Value, rv: Value) -> Ternary:
                return self.compare(op, left, lv, LiteralNode(rv), rv)
            return compare_literal

        def compare(lv: Value, rv: Value) -> Ternary:
            return self.compare(op, left, lv, right, rv)
        return compare


#: A compiled expression: evaluate against one row environment.
CompiledExpr = Callable[[Row], Value]

_ARITH_OPS = frozenset({BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL,
                        BinaryOp.DIV, BinaryOp.MOD})
_BIT_OPS = frozenset({BinaryOp.BITAND, BinaryOp.BITOR, BinaryOp.SHL,
                      BinaryOp.SHR})


class Interpreter:
    """Evaluate expression ASTs against a pivot row (paper Algorithm 2).

    Expressions are compiled once into a tree of closures and the compiled
    form is memoized per AST node identity, so the per-row cost is a dict
    probe plus the closure calls.  Compilation mirrors the historical
    tree-walking evaluator exactly — same evaluation order, same semantics
    hooks, same error messages — because the containment oracle depends on
    bit-identical outcomes.  Nodes are immutable (frozen dataclasses), so
    identity keying is sound; the cache holds strong references, so an id
    cannot be reused while its entry is alive.
    """

    #: Clear-all bound on the compiled-closure memo: campaigns evaluate an
    #: unbounded stream of distinct expressions through one long-lived
    #: oracle interpreter.
    _CACHE_LIMIT = 2048

    def __init__(self, semantics: Semantics):
        self.semantics = semantics
        self._compiled: dict[int, tuple[Expr, CompiledExpr]] = {}

    # -- public API ----------------------------------------------------------
    def evaluate(self, expr: Expr, row: Row) -> Value:
        """Evaluate *expr* with column references bound from *row*."""
        entry = self._compiled.get(id(expr))
        if entry is None:
            if len(self._compiled) >= self._CACHE_LIMIT:
                self._compiled.clear()
            entry = (expr, self._compile(expr))
            self._compiled[id(expr)] = entry
        return entry[1](row)

    def evaluate_bool(self, expr: Expr, row: Row) -> Ternary:
        """Evaluate *expr* in a boolean context (for WHERE/JOIN conditions)."""
        return self.semantics.to_bool(self.evaluate(expr, row))

    def evaluate_uncached(self, expr: Expr, row: Row) -> Value:
        """Evaluate a one-shot tree without touching the compile memo.

        For callers that build fresh nodes per evaluation (aggregate
        substitution), where caching would only thrash the memo.
        (Per-subtree memoization was tried and measured slower: most
        synthesized trees are evaluated exactly once, so the memo
        bookkeeping outweighs the few re-extension hits.)
        """
        return self._compile(expr)(row)

    def compile(self, expr: Expr) -> CompiledExpr:
        """The compiled closure for *expr* (memoized)."""
        entry = self._compiled.get(id(expr))
        if entry is None:
            if len(self._compiled) >= self._CACHE_LIMIT:
                self._compiled.clear()
            entry = (expr, self._compile(expr))
            self._compiled[id(expr)] = entry
        return entry[1]

    # -- compilation ----------------------------------------------------------
    def _compile(self, expr: Expr) -> CompiledExpr:
        sem = self.semantics
        if isinstance(expr, LiteralNode):
            value = expr.value
            return lambda row: value
        if isinstance(expr, ColumnNode):
            qualified = expr.qualified

            def load_column(row: Row) -> Value:
                try:
                    return row[qualified]
                except KeyError:
                    raise EvalError(
                        f"unbound column {qualified}") from None
            return load_column
        if isinstance(expr, UnaryNode):
            return self._compile_unary(expr)
        if isinstance(expr, PostfixNode):
            return self._compile_postfix(expr)
        if isinstance(expr, BinaryNode):
            return self._compile_binary(expr)
        if isinstance(expr, BetweenNode):
            return self._compile_between(expr)
        if isinstance(expr, InListNode):
            return self._compile_in(expr)
        if isinstance(expr, CastNode):
            operand = self._compile(expr.operand)
            cast = sem.cast
            type_name = expr.type_name
            return lambda row: cast(operand(row), type_name)
        if isinstance(expr, CollateNode):
            return self._compile(expr.operand)
        if isinstance(expr, CaseNode):
            return self._compile_case(expr)
        if isinstance(expr, FunctionNode):
            args = [self._compile(arg) for arg in expr.args]
            collation = None
            if expr.args:
                collation = expr_collation(expr.args[0])[0]
            name = expr.name
            call = sem.call
            return lambda row: call(name, [fn(row) for fn in args],
                                    first_arg_collation=collation)

        def unknown_node(row: Row) -> Value:
            raise EvalError(f"cannot evaluate node {expr!r}")
        return unknown_node

    def _compile_unary(self, expr: UnaryNode) -> CompiledExpr:
        sem = self.semantics
        operand = self._compile(expr.operand)
        op = expr.op
        if op is UnaryOp.NOT:
            to_bool, bool_value = sem.to_bool, sem.bool_value
            return lambda row: bool_value(t_not(to_bool(operand(row))))
        if op is UnaryOp.MINUS:
            negate = sem.negate
            return lambda row: negate(operand(row))
        if op is UnaryOp.PLUS:
            return operand
        if op is UnaryOp.BITNOT:
            bitnot = sem.bitnot
            return lambda row: bitnot(operand(row))

        def unknown_unary(row: Row) -> Value:
            operand(row)
            raise EvalError(f"unknown unary op {op}")
        return unknown_unary

    def _compile_postfix(self, expr: PostfixNode) -> CompiledExpr:
        sem = self.semantics
        operand = self._compile(expr.operand)
        op = expr.op
        bool_value = sem.bool_value
        if op is PostfixOp.ISNULL:
            return lambda row: bool_value(operand(row).is_null)
        if op is PostfixOp.NOTNULL:
            return lambda row: bool_value(not operand(row).is_null)
        # IS TRUE / IS FALSE family is two-valued: NULL IS TRUE = FALSE.
        to_bool = sem.to_bool
        if op is PostfixOp.IS_TRUE:
            return lambda row: bool_value(to_bool(operand(row)) is True)
        if op is PostfixOp.IS_FALSE:
            return lambda row: bool_value(to_bool(operand(row)) is False)
        if op is PostfixOp.IS_NOT_TRUE:
            return lambda row: bool_value(to_bool(operand(row)) is not True)
        if op is PostfixOp.IS_NOT_FALSE:
            return lambda row: bool_value(to_bool(operand(row)) is not False)

        def unknown_postfix(row: Row) -> Value:
            to_bool(operand(row))
            raise EvalError(f"unknown postfix op {op}")
        return unknown_postfix

    def _compile_binary(self, expr: BinaryNode) -> CompiledExpr:
        sem = self.semantics
        op = expr.op
        left = self._compile(expr.left)
        right = self._compile(expr.right)
        bool_value = sem.bool_value
        if op.is_logical:
            # AND/OR do evaluate both sides here; SQL has no mandated
            # short-circuit order and both operand trees are side-effect
            # free.  Python argument order keeps left-then-right.
            to_bool = sem.to_bool
            combine = t_and if op is BinaryOp.AND else t_or
            return lambda row: bool_value(combine(to_bool(left(row)),
                                                  to_bool(right(row))))
        if op in (BinaryOp.LIKE, BinaryOp.NOT_LIKE):
            like = sem.like
            if op is BinaryOp.NOT_LIKE:
                return lambda row: bool_value(
                    t_not(like(left(row), right(row))))
            return lambda row: bool_value(like(left(row), right(row)))
        if op is BinaryOp.GLOB:
            glob = sem.glob
            return lambda row: bool_value(glob(left(row), right(row)))
        if op is BinaryOp.CONCAT:
            concat = sem.concat
            return lambda row: concat(left(row), right(row))
        if op in _ARITH_OPS:
            arithmetic = sem.arithmetic
            return lambda row: arithmetic(op, left(row), right(row))
        if op in _BIT_OPS:
            bitwise = sem.bitwise
            return lambda row: bitwise(op, left(row), right(row))
        if op.is_comparison:
            compare = sem.compile_compare(op, expr.left, expr.right)
            return lambda row: bool_value(compare(left(row), right(row)))

        def unknown_binary(row: Row) -> Value:
            left(row)
            right(row)
            raise EvalError(f"unknown binary op {op}")
        return unknown_binary

    def _compile_between(self, expr: BetweenNode) -> CompiledExpr:
        sem = self.semantics
        operand = self._compile(expr.operand)
        low = self._compile(expr.low)
        high = self._compile(expr.high)
        ge = sem.compile_compare(BinaryOp.GE, expr.operand, expr.low)
        le = sem.compile_compare(BinaryOp.LE, expr.operand, expr.high)
        bool_value = sem.bool_value
        negated = expr.negated

        def between(row: Row) -> Value:
            v = operand(row)
            lo = low(row)
            hi = high(row)
            out = t_and(ge(v, lo), le(v, hi))
            if negated:
                out = t_not(out)
            return bool_value(out)
        return between

    def _compile_in(self, expr: InListNode) -> CompiledExpr:
        sem = self.semantics
        operand = self._compile(expr.operand)
        items = [self._compile(item) for item in expr.items]
        # The affinity of an IN comparison is that of the LHS only; the
        # items' own affinities are ignored (SQLite rule), so each item is
        # presented as a bare literal (right=None to compile_compare).
        eq = sem.compile_compare(BinaryOp.EQ, expr.operand, None)
        bool_value = sem.bool_value
        negated = expr.negated

        def in_list(row: Row) -> Value:
            v = operand(row)
            saw_null = False
            found = False
            for item in items:
                result = eq(v, item(row))
                if result is True:
                    found = True
                    break
                if result is None:
                    saw_null = True
            if found:
                out: Ternary = True
            elif saw_null:
                out = None
            else:
                out = False
            if negated:
                out = t_not(out)
            return bool_value(out)
        return in_list

    def _compile_case(self, expr: CaseNode) -> CompiledExpr:
        sem = self.semantics
        else_fn = self._compile(expr.else_) if expr.else_ is not None \
            else None
        if expr.operand is not None:
            operand = self._compile(expr.operand)
            whens = [(self._compile(cond),
                      sem.compile_compare(BinaryOp.EQ, expr.operand, cond),
                      self._compile(result))
                     for cond, result in expr.whens]

            def case_operand(row: Row) -> Value:
                base = operand(row)
                for cond_fn, eq, result_fn in whens:
                    if eq(base, cond_fn(row)) is True:
                        return result_fn(row)
                if else_fn is not None:
                    return else_fn(row)
                return NULL
            return case_operand

        to_bool = sem.to_bool
        searched = [(self._compile(cond), self._compile(result))
                    for cond, result in expr.whens]

        def case_searched(row: Row) -> Value:
            for cond_fn, result_fn in searched:
                if to_bool(cond_fn(row)) is True:
                    return result_fn(row)
            if else_fn is not None:
                return else_fn(row)
            return NULL
        return case_searched
