"""Interpreter driver, three-valued logic, and static expression analysis.

SQL's ``WHERE`` logic is ternary: expressions evaluate to TRUE, FALSE or
NULL (unknown).  We model the logical layer with ``Optional[bool]`` (``None``
means NULL) and materialize results back into dialect values.

The driver is deliberately naive — the paper notes "all operations are
implemented naively and do not perform any optimizations, since the
bottleneck of our approach is the DBMS evaluating the queries".
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import PQSError
from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    BinaryOp,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    Expr,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
)
from repro.values import NULL, Value

#: Evaluation environment: qualified column name ("t0.c0") -> stored value.
Row = Mapping[str, Value]

Ternary = Optional[bool]


class EvalError(PQSError):
    """Evaluation failed in a way the engine would also report as an error.

    Strict dialects (PostgreSQL) raise this for type mismatches and division
    by zero.  The generator treats it as "discard and redraw", since a query
    built on such an expression would error rather than mis-answer.
    """


def t_not(a: Ternary) -> Ternary:
    if a is None:
        return None
    return not a


def t_and(a: Ternary, b: Ternary) -> Ternary:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def t_or(a: Ternary, b: Ternary) -> Ternary:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


# ---------------------------------------------------------------------------
# Static analysis: affinity and collation of expressions (SQLite rules)
# ---------------------------------------------------------------------------

def expr_affinity(expr: Expr) -> Optional[str]:
    """Type affinity of an expression, per SQLite's static rules.

    Column references carry their column's affinity; ``CAST`` imposes the
    affinity of its target type; ``COLLATE`` is transparent.  Unary ``+``
    *strips* affinity — that is SQLite's documented idiom for defeating
    affinity conversion in comparisons.  Everything else has no affinity.
    """
    if isinstance(expr, ColumnNode):
        return expr.affinity
    if isinstance(expr, CastNode):
        return affinity_of_type_name(expr.type_name)
    if isinstance(expr, CollateNode):
        return expr_affinity(expr.operand)
    return None


def affinity_of_type_name(type_name: str) -> str:
    """SQLite's declared-type → affinity mapping (its §3.1 rules)."""
    upper = type_name.upper()
    if "INT" in upper:
        return "INTEGER"
    if "CHAR" in upper or "CLOB" in upper or "TEXT" in upper:
        return "TEXT"
    if "BLOB" in upper or upper == "":
        return "BLOB"
    if "REAL" in upper or "FLOA" in upper or "DOUB" in upper:
        return "REAL"
    return "NUMERIC"


def expr_collation(expr: Expr) -> tuple[Optional[str], bool]:
    """Collating sequence of an expression: ``(name, explicit)``.

    An explicit ``COLLATE`` operator anywhere in the operand wins over
    implicit column collations; this mirrors SQLite's rules for choosing
    the collating sequence of a comparison.
    """
    if isinstance(expr, CollateNode):
        return expr.collation, True
    if isinstance(expr, ColumnNode):
        return expr.collation, False
    if isinstance(expr, CastNode):
        return expr_collation(expr.operand)
    if isinstance(expr, UnaryNode) and expr.op is UnaryOp.PLUS:
        # Unary + strips *implicit* collation binding in SQLite but keeps
        # explicit COLLATE operators.
        name, explicit = expr_collation(expr.operand)
        return (name, True) if explicit else (None, False)
    return None, False


def comparison_collation(left: Expr, right: Expr) -> str:
    """The collating sequence a comparison of *left* and *right* uses."""
    lname, lexp = expr_collation(left)
    rname, rexp = expr_collation(right)
    if lexp and lname:
        return lname
    if rexp and rname:
        return rname
    if lname:
        return lname
    if rname:
        return rname
    return "BINARY"


# ---------------------------------------------------------------------------
# Semantics interface
# ---------------------------------------------------------------------------

class Semantics:
    """Dialect-specific value semantics consumed by :class:`Interpreter`.

    Subclasses implement every hook; the base class only fixes the
    interface.  All hooks receive and return :class:`Value` objects.
    """

    name = "abstract"

    def to_bool(self, v: Value) -> Ternary:
        raise NotImplementedError

    def bool_value(self, b: Ternary) -> Value:
        """Materialize a ternary logical result as a dialect value."""
        raise NotImplementedError

    def compare(self, op: BinaryOp, left: Expr, lv: Value,
                right: Expr, rv: Value) -> Ternary:
        raise NotImplementedError

    def arithmetic(self, op: BinaryOp, a: Value, b: Value) -> Value:
        raise NotImplementedError

    def bitwise(self, op, a: Value, b: Value) -> Value:
        raise NotImplementedError

    def negate(self, v: Value) -> Value:
        raise NotImplementedError

    def bitnot(self, v: Value) -> Value:
        raise NotImplementedError

    def concat(self, a: Value, b: Value) -> Value:
        raise NotImplementedError

    def like(self, text: Value, pattern: Value) -> Ternary:
        raise NotImplementedError

    def glob(self, text: Value, pattern: Value) -> Ternary:
        raise NotImplementedError

    def cast(self, v: Value, type_name: str) -> Value:
        raise NotImplementedError

    def call(self, name: str, args: list[Value],
             first_arg_collation: str | None = None) -> Value:
        """Invoke a scalar function.

        ``first_arg_collation`` carries the collating sequence of the first
        argument *expression* — SQLite's scalar MIN/MAX (and NULLIF)
        compare text using it.
        """
        raise NotImplementedError

    def values_equal(self, a: Value, b: Value) -> bool:
        """Row-membership equality used by the containment check and IN."""
        raise NotImplementedError


class Interpreter:
    """Evaluate expression ASTs against a pivot row (paper Algorithm 2)."""

    def __init__(self, semantics: Semantics):
        self.semantics = semantics

    # -- public API ----------------------------------------------------------
    def evaluate(self, expr: Expr, row: Row) -> Value:
        """Evaluate *expr* with column references bound from *row*."""
        return self._eval(expr, row)

    def evaluate_bool(self, expr: Expr, row: Row) -> Ternary:
        """Evaluate *expr* in a boolean context (for WHERE/JOIN conditions)."""
        return self.semantics.to_bool(self._eval(expr, row))

    # -- dispatch -------------------------------------------------------------
    def _eval(self, expr: Expr, row: Row) -> Value:
        sem = self.semantics
        if isinstance(expr, LiteralNode):
            return expr.value
        if isinstance(expr, ColumnNode):
            try:
                return row[expr.qualified]
            except KeyError:
                raise EvalError(f"unbound column {expr.qualified}") from None
        if isinstance(expr, UnaryNode):
            return self._eval_unary(expr, row)
        if isinstance(expr, PostfixNode):
            return self._eval_postfix(expr, row)
        if isinstance(expr, BinaryNode):
            return self._eval_binary(expr, row)
        if isinstance(expr, BetweenNode):
            return self._eval_between(expr, row)
        if isinstance(expr, InListNode):
            return self._eval_in(expr, row)
        if isinstance(expr, CastNode):
            return sem.cast(self._eval(expr.operand, row), expr.type_name)
        if isinstance(expr, CollateNode):
            return self._eval(expr.operand, row)
        if isinstance(expr, CaseNode):
            return self._eval_case(expr, row)
        if isinstance(expr, FunctionNode):
            args = [self._eval(arg, row) for arg in expr.args]
            collation = None
            if expr.args:
                collation = expr_collation(expr.args[0])[0]
            return sem.call(expr.name, args, first_arg_collation=collation)
        raise EvalError(f"cannot evaluate node {expr!r}")

    def _eval_unary(self, expr: UnaryNode, row: Row) -> Value:
        sem = self.semantics
        v = self._eval(expr.operand, row)
        if expr.op is UnaryOp.NOT:
            return sem.bool_value(t_not(sem.to_bool(v)))
        if expr.op is UnaryOp.MINUS:
            return sem.negate(v)
        if expr.op is UnaryOp.PLUS:
            return v
        if expr.op is UnaryOp.BITNOT:
            return sem.bitnot(v)
        raise EvalError(f"unknown unary op {expr.op}")

    def _eval_postfix(self, expr: PostfixNode, row: Row) -> Value:
        sem = self.semantics
        v = self._eval(expr.operand, row)
        op = expr.op
        if op is PostfixOp.ISNULL:
            return sem.bool_value(v.is_null)
        if op is PostfixOp.NOTNULL:
            return sem.bool_value(not v.is_null)
        # IS TRUE / IS FALSE family is two-valued: NULL IS TRUE = FALSE.
        b = sem.to_bool(v)
        if op is PostfixOp.IS_TRUE:
            return sem.bool_value(b is True)
        if op is PostfixOp.IS_FALSE:
            return sem.bool_value(b is False)
        if op is PostfixOp.IS_NOT_TRUE:
            return sem.bool_value(b is not True)
        if op is PostfixOp.IS_NOT_FALSE:
            return sem.bool_value(b is not False)
        raise EvalError(f"unknown postfix op {op}")

    def _eval_binary(self, expr: BinaryNode, row: Row) -> Value:
        sem = self.semantics
        op = expr.op
        if op.is_logical:
            # AND/OR do evaluate both sides here; SQL has no mandated
            # short-circuit order and both operand trees are side-effect free.
            lb = sem.to_bool(self._eval(expr.left, row))
            rb = sem.to_bool(self._eval(expr.right, row))
            out = t_and(lb, rb) if op is BinaryOp.AND else t_or(lb, rb)
            return sem.bool_value(out)
        lv = self._eval(expr.left, row)
        rv = self._eval(expr.right, row)
        if op in (BinaryOp.LIKE, BinaryOp.NOT_LIKE):
            out = sem.like(lv, rv)
            if op is BinaryOp.NOT_LIKE:
                out = t_not(out)
            return sem.bool_value(out)
        if op is BinaryOp.GLOB:
            return sem.bool_value(sem.glob(lv, rv))
        if op is BinaryOp.CONCAT:
            return sem.concat(lv, rv)
        if op in (BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV,
                  BinaryOp.MOD):
            return sem.arithmetic(op, lv, rv)
        if op in (BinaryOp.BITAND, BinaryOp.BITOR, BinaryOp.SHL, BinaryOp.SHR):
            return sem.bitwise(op, lv, rv)
        if op.is_comparison:
            return sem.bool_value(sem.compare(op, expr.left, lv, expr.right, rv))
        raise EvalError(f"unknown binary op {op}")

    def _eval_between(self, expr: BetweenNode, row: Row) -> Value:
        sem = self.semantics
        v = self._eval(expr.operand, row)
        lo = self._eval(expr.low, row)
        hi = self._eval(expr.high, row)
        ge = sem.compare(BinaryOp.GE, expr.operand, v, expr.low, lo)
        le = sem.compare(BinaryOp.LE, expr.operand, v, expr.high, hi)
        out = t_and(ge, le)
        if expr.negated:
            out = t_not(out)
        return sem.bool_value(out)

    def _eval_in(self, expr: InListNode, row: Row) -> Value:
        sem = self.semantics
        v = self._eval(expr.operand, row)
        saw_null = False
        found = False
        for item in expr.items:
            iv = self._eval(item, row)
            # The affinity of an IN comparison is that of the LHS only; the
            # items' own affinities are ignored (SQLite rule), so the item
            # is presented as a bare literal.
            eq = sem.compare(BinaryOp.EQ, expr.operand, v, LiteralNode(iv), iv)
            if eq is True:
                found = True
                break
            if eq is None:
                saw_null = True
        if found:
            out: Ternary = True
        elif saw_null:
            out = None
        else:
            out = False
        if expr.negated:
            out = t_not(out)
        return sem.bool_value(out)

    def _eval_case(self, expr: CaseNode, row: Row) -> Value:
        sem = self.semantics
        if expr.operand is not None:
            base = self._eval(expr.operand, row)
            for cond, result in expr.whens:
                cv = self._eval(cond, row)
                if sem.compare(BinaryOp.EQ, expr.operand, base, cond, cv) is True:
                    return self._eval(result, row)
        else:
            for cond, result in expr.whens:
                if sem.to_bool(self._eval(cond, row)) is True:
                    return self._eval(result, row)
        if expr.else_ is not None:
            return self._eval(expr.else_, row)
        return NULL
