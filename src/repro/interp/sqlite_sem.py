"""Exact SQLite value semantics.

SQLite is dynamically typed: any value can be stored in any column, columns
have *type affinity* rather than types, and most operators perform implicit
conversions.  The paper found the most bugs in SQLite precisely because of
this flexibility, so this module models the conversion machinery closely:

* storage classes and cross-class comparison ordering
  (NULL < numbers < TEXT < BLOB);
* affinity application before comparisons (SQLite docs §"Type Affinity");
* numeric prefix casts for arithmetic (``'5abc' + 1`` is ``6``);
* 64-bit integer arithmetic that overflows into REAL;
* collating sequences BINARY, NOCASE and RTRIM;
* LIKE (ASCII-case-insensitive) and GLOB (case-sensitive).

Tests cross-validate this module against the real SQLite via the stdlib
``sqlite3`` bindings on thousands of random expressions.
"""

from __future__ import annotations

import math

from repro.interp.base import (
    EvalError,
    Semantics,
    Ternary,
    comparison_collation,
    expr_affinity,
)
from repro.interp.patterns import glob_match, like_match
from repro.sqlast.nodes import BinaryOp, Expr, LiteralNode
from repro.values import (
    NULL,
    SQLType,
    Value,
    compare_blobs,
    compare_numbers,
    fits_int64,
    format_real,
    get_collation,
    int_or_real,
    numeric_prefix,
    real_to_integer,
    text_to_integer,
    text_to_real,
    wrap_int64,
)

#: Shared comparison-result singletons: bool_value runs once per
#: predicate evaluation, so skip the small-int intern lookup entirely.
_INT_ZERO = Value.integer(0)
_INT_ONE = Value.integer(1)

NUMERIC_AFFINITIES = frozenset({"INTEGER", "REAL", "NUMERIC"})

# ASCII-only digit tests, matching SQLite's C scanner (see values.py).


def blob_to_text(b: bytes) -> str:
    """SQLite treats a BLOB cast to TEXT as raw bytes reinterpreted."""
    return b.decode("utf-8", errors="replace")


def to_text(v: Value) -> str:
    """``CAST(v AS TEXT)`` for non-NULL *v*."""
    if v.t is SQLType.TEXT:
        return str(v.v)
    if v.t is SQLType.INTEGER:
        return str(v.v)
    if v.t is SQLType.REAL:
        return format_real(float(v.v))
    if v.t is SQLType.BLOB:
        return blob_to_text(bytes(v.v))
    if v.t is SQLType.BOOLEAN:
        return "1" if v.v else "0"
    raise EvalError(f"cannot cast {v!r} to TEXT")


def to_numeric(v: Value) -> int | float | None:
    """Numeric coercion used by arithmetic; ``None`` for NULL."""
    t = v.t
    if t is SQLType.INTEGER:
        return v.v  # payload is always an exact int (Value.integer coerces)
    if t is SQLType.NULL:
        return None
    if t is SQLType.REAL:
        return float(v.v)
    if t is SQLType.BOOLEAN:
        return 1 if v.v else 0
    # TEXT payloads skip the to_text dispatch (it would return v.v).
    text = v.v if t is SQLType.TEXT else to_text(v)
    num, is_int = numeric_prefix(text)
    if is_int:
        # Integer literals beyond the int64 range become REAL, not wrapped.
        return int(num) if fits_int64(int(num)) else float(num)
    return float(num)


def to_int64(v: Value) -> int | None:
    """``CAST(v AS INTEGER)``; ``None`` for NULL."""
    if v.t is SQLType.NULL:
        return None
    if v.t is SQLType.INTEGER:
        return int(v.v)
    if v.t is SQLType.BOOLEAN:
        return 1 if v.v else 0
    if v.t is SQLType.REAL:
        return real_to_integer(float(v.v))
    return text_to_integer(to_text(v))


def is_well_formed_number(text: str) -> tuple[bool, int | float | None]:
    """Does the *entire* string form a numeric literal (SQLite affinity rule)?"""
    stripped = text.strip(" \t\n\r\f\v")
    if not stripped:
        return False, None
    num, is_int = numeric_prefix(stripped)
    consumed = _numeric_prefix_length(stripped)
    if consumed != len(stripped):
        return False, None
    if is_int:
        return True, int(num)
    return True, float(num)


def _numeric_prefix_length(s: str) -> int:
    i, n = 0, len(s)
    if i < n and s[i] in "+-":
        i += 1
    digits = 0
    while i < n and "0" <= s[i] <= "9":
        i += 1
        digits += 1
    if i < n and s[i] == ".":
        j = i + 1
        frac = 0
        while j < n and "0" <= s[j] <= "9":
            j += 1
            frac += 1
        if digits or frac:
            i = j
            digits += frac
    if digits and i < n and s[i] in "eE":
        j = i + 1
        if j < n and s[j] in "+-":
            j += 1
        exp = 0
        while j < n and "0" <= s[j] <= "9":
            j += 1
            exp += 1
        if exp:
            i = j
    return i if digits else 0


def apply_numeric_affinity(v: Value) -> Value:
    """Convert TEXT to a number if (and only if) it is well formed & lossless."""
    if v.t is not SQLType.TEXT:
        if v.t is SQLType.BOOLEAN:
            return Value.integer(1 if v.v else 0)
        return v
    ok, num = is_well_formed_number(str(v.v))
    if not ok:
        return v
    if isinstance(num, int):
        if fits_int64(num):
            return Value.integer(num)
        return Value.real(float(num))
    assert num is not None
    if not math.isinf(num) and not math.isnan(num) and \
            num == math.trunc(num) and fits_int64(int(num)):
        as_int = int(num)
        if float(as_int) == num:
            return Value.integer(as_int)
    return Value.real(float(num))


def apply_text_affinity(v: Value) -> Value:
    if v.t in (SQLType.INTEGER, SQLType.REAL, SQLType.BOOLEAN):
        return Value.text(to_text(v))
    return v


def apply_affinity(v: Value, affinity: str | None) -> Value:
    """Apply a column affinity to a value being stored (INSERT-time rule)."""
    if v.t is SQLType.NULL or affinity is None or affinity == "BLOB":
        if v.t is SQLType.BOOLEAN:
            return Value.integer(1 if v.v else 0)
        return v
    if affinity in ("INTEGER", "NUMERIC"):
        out = apply_numeric_affinity(v)
        if affinity == "INTEGER" and out.t is SQLType.REAL:
            f = float(out.v)
            if f == math.trunc(f) and fits_int64(int(f)):
                return Value.integer(int(f))
        return out
    if affinity == "REAL":
        out = apply_numeric_affinity(v)
        if out.t is SQLType.INTEGER:
            as_real = float(out.v)
            if int(as_real) == out.v:
                return Value.real(as_real)
        return out
    if affinity == "TEXT":
        return apply_text_affinity(v)
    return v


#: Cross-class comparison ranks (numbers < TEXT < BLOB); NULL deliberately
#: absent — callers comparing NULLs get the historical KeyError.
_STORAGE_RANK = {SQLType.BOOLEAN: 1, SQLType.INTEGER: 1, SQLType.REAL: 1,
                 SQLType.TEXT: 2, SQLType.BLOB: 3}


def storage_compare(a: Value, b: Value, collation_name: str = "BINARY") -> int:
    """Total order over non-NULL SQLite values (used by =, <, ORDER BY)."""
    ra, rb = _STORAGE_RANK[a.t], _STORAGE_RANK[b.t]
    if ra != rb:
        return -1 if ra < rb else 1
    if ra == 1:
        return compare_numbers(a.v, b.v)  # type: ignore[arg-type]
    if ra == 2:
        return get_collation(collation_name)(str(a.v), str(b.v))
    return compare_blobs(bytes(a.v), bytes(b.v))


def _storage_compare_collated(a: Value, b: Value, collate) -> int:
    """:func:`storage_compare` with a pre-resolved collation function."""
    ra, rb = _STORAGE_RANK[a.t], _STORAGE_RANK[b.t]
    if ra != rb:
        return -1 if ra < rb else 1
    if ra == 1:
        return compare_numbers(a.v, b.v)  # type: ignore[arg-type]
    if ra == 2:
        return collate(str(a.v), str(b.v))
    return compare_blobs(bytes(a.v), bytes(b.v))


class SQLiteSemantics(Semantics):
    """SQLite dialect semantics (see module docstring)."""

    name = "sqlite"
    like_case_sensitive = False

    # -- boolean context -----------------------------------------------------
    def to_bool(self, v: Value) -> Ternary:
        t = v.t
        if t is SQLType.INTEGER:
            # Dominant case: comparison results are 0/1 integers.
            return v.v != 0
        if t is SQLType.NULL:
            return None
        if t is SQLType.BOOLEAN:
            return bool(v.v)
        num = to_numeric(v)
        assert num is not None
        return num != 0

    def bool_value(self, b: Ternary) -> Value:
        if b is None:
            return NULL
        return _INT_ONE if b else _INT_ZERO

    # -- comparisons -----------------------------------------------------------
    def compare(self, op: BinaryOp, left: Expr, lv: Value,
                right: Expr, rv: Value) -> Ternary:
        lv, rv = self._apply_comparison_affinity(left, lv, right, rv)
        if op in (BinaryOp.IS, BinaryOp.IS_NOT, BinaryOp.NULL_SAFE_EQ):
            equal = self._null_safe_equal(left, lv, right, rv)
            if op is BinaryOp.IS_NOT:
                return not equal
            return equal
        if lv.is_null or rv.is_null:
            return None
        coll = comparison_collation(left, right)
        cmp = storage_compare(lv, rv, coll)
        return _cmp_result(op, cmp)

    def _null_safe_equal(self, left: Expr, lv: Value,
                         right: Expr, rv: Value) -> bool:
        if lv.is_null and rv.is_null:
            return True
        if lv.is_null or rv.is_null:
            return False
        coll = comparison_collation(left, right)
        return storage_compare(lv, rv, coll) == 0

    @staticmethod
    def _apply_comparison_affinity(left: Expr, lv: Value, right: Expr,
                                   rv: Value) -> tuple[Value, Value]:
        return _comparison_converter(left, right)(lv, rv)

    def compile_compare(self, op: BinaryOp, left: Expr,
                        right: Expr | None):
        """Comparison specialized to a fixed site: the affinity decision
        and collating sequence depend only on the operand *expressions*,
        so both are resolved once at compile time.

        Engine-defect subclasses that override :meth:`compare` (injected
        comparison bugs) automatically fall back to the generic per-call
        path — the fast path would bypass their override.
        """
        if type(self).compare is not SQLiteSemantics.compare:
            return super().compile_compare(op, left, right)
        return self._compile_compare_sqlite(op, left, right)

    def _compile_compare_sqlite(self, op: BinaryOp, left: Expr,
                                right: Expr | None):
        """The specialized compare body, callable by subclasses that have
        proven their :meth:`compare` override cannot apply at this site."""
        # An IN-list item (right=None) acts as a bare literal: no
        # affinity, no collation — exactly what a LiteralNode supplies.
        right_expr: Expr = LiteralNode(NULL) if right is None else right
        convert = _comparison_converter(left, right_expr)
        collate = get_collation(comparison_collation(left, right_expr))
        if op in (BinaryOp.IS, BinaryOp.IS_NOT, BinaryOp.NULL_SAFE_EQ):
            negate = op is BinaryOp.IS_NOT

            def null_safe(lv: Value, rv: Value) -> bool:
                lv, rv = convert(lv, rv)
                if lv.is_null and rv.is_null:
                    equal = True
                elif lv.is_null or rv.is_null:
                    equal = False
                else:
                    equal = _storage_compare_collated(lv, rv, collate) == 0
                return not equal if negate else equal
            return null_safe

        result = _CMP_FUNCS[op]
        null_t = SQLType.NULL

        def ordered(lv: Value, rv: Value) -> Ternary:
            lv, rv = convert(lv, rv)
            if lv.t is null_t or rv.t is null_t:
                return None
            return result(_storage_compare_collated(lv, rv, collate))
        return ordered

    # -- arithmetic ------------------------------------------------------------
    def arithmetic(self, op: BinaryOp, a: Value, b: Value) -> Value:
        x = to_numeric(a)
        y = to_numeric(b)
        if x is None or y is None:
            return NULL
        if op is BinaryOp.ADD:
            return self._num_result(x, y, lambda p, q: p + q)
        if op is BinaryOp.SUB:
            return self._num_result(x, y, lambda p, q: p - q)
        if op is BinaryOp.MUL:
            return self._num_result(x, y, lambda p, q: p * q)
        if op is BinaryOp.DIV:
            return self._divide(x, y)
        if op is BinaryOp.MOD:
            return self._modulo(a, b, x, y)
        raise EvalError(f"not an arithmetic op: {op}")

    @staticmethod
    def _num_result(x, y, fn) -> Value:
        if isinstance(x, int) and isinstance(y, int):
            exact = fn(x, y)
            if fits_int64(exact):
                return Value.integer(exact)
            # On int64 overflow SQLite *redoes the operation in doubles*
            # (it does not convert the exact wide result), so e.g.
            # 87 * 2851427734582196970 rounds each operand first.
        try:
            out = float(fn(float(x), float(y)))
        except OverflowError:
            return Value.real(math.inf if fn(1.0, 1.0) >= 0 else -math.inf)
        if math.isnan(out):
            return NULL  # SQLite replaces NaN results with NULL
        return Value.real(out)

    @staticmethod
    def _divide(x, y) -> Value:
        if isinstance(x, int) and isinstance(y, int):
            if y == 0:
                return NULL
            q = abs(x) // abs(y)
            if (x < 0) != (y < 0):
                q = -q
            return int_or_real(q)
        if float(y) == 0.0:
            return NULL
        out = float(x) / float(y)
        if math.isnan(out):
            return NULL
        return Value.real(out)

    @staticmethod
    def _modulo(a: Value, b: Value, x, y) -> Value:
        # SQLite casts both operands of % to INTEGER *from their original
        # representation* (text uses the digit prefix: '9e99' % 10 is 9.0),
        # while the result is REAL whenever either operand's numeric value
        # was REAL (5.5 % 2 == 1.0, '5.5' % 2 == 1.0).
        xi = to_int64(a)
        yi = to_int64(b)
        assert xi is not None and yi is not None
        if yi == 0:
            return NULL
        r = abs(xi) % abs(yi)
        if xi < 0:
            r = -r
        if isinstance(x, float) or isinstance(y, float):
            return Value.real(float(r))
        return Value.integer(r)

    # -- bitwise ------------------------------------------------------------
    def bitwise(self, op: BinaryOp, a: Value, b: Value) -> Value:
        x = to_int64(a)
        y = to_int64(b)
        if x is None or y is None:
            return NULL
        if op is BinaryOp.BITAND:
            return Value.integer(wrap_int64(x & y))
        if op is BinaryOp.BITOR:
            return Value.integer(wrap_int64(x | y))
        if op is BinaryOp.SHL:
            return Value.integer(_shift_left(x, y))
        if op is BinaryOp.SHR:
            return Value.integer(_shift_right(x, y))
        raise EvalError(f"not a bitwise op: {op}")

    def negate(self, v: Value) -> Value:
        num = to_numeric(v)
        if num is None:
            return NULL
        if isinstance(num, int):
            return int_or_real(-num)
        return Value.real(-num)

    def bitnot(self, v: Value) -> Value:
        x = to_int64(v)
        if x is None:
            return NULL
        return Value.integer(wrap_int64(~x))

    # -- strings -----------------------------------------------------------
    def concat(self, a: Value, b: Value) -> Value:
        if a.is_null or b.is_null:
            return NULL
        return Value.text(to_text(a) + to_text(b))

    def like(self, text: Value, pattern: Value) -> Ternary:
        # SQLite: a BLOB on either side makes LIKE false, even before the
        # NULL check (NULL LIKE X'41' is 0, not NULL).
        if text.t is SQLType.BLOB or pattern.t is SQLType.BLOB:
            return False
        if text.is_null or pattern.is_null:
            return None
        return like_match(to_text(text), to_text(pattern),
                          case_sensitive=self.like_case_sensitive)

    def glob(self, text: Value, pattern: Value) -> Ternary:
        if text.t is SQLType.BLOB or pattern.t is SQLType.BLOB:
            return False
        if text.is_null or pattern.is_null:
            return None
        return glob_match(to_text(text), to_text(pattern))

    # -- casts ------------------------------------------------------------
    def cast(self, v: Value, type_name: str) -> Value:
        if v.is_null:
            return NULL
        from repro.interp.base import affinity_of_type_name

        affinity = affinity_of_type_name(type_name)
        if affinity == "INTEGER":
            out = to_int64(v)
            assert out is not None
            return Value.integer(out)
        if affinity == "REAL":
            if v.t is SQLType.REAL:
                return v
            if v.t in (SQLType.INTEGER, SQLType.BOOLEAN):
                return Value.real(float(to_numeric(v)))  # type: ignore[arg-type]
            return Value.real(text_to_real(to_text(v)))
        if affinity == "TEXT":
            return Value.text(to_text(v))
        if affinity == "BLOB":
            if v.t is SQLType.BLOB:
                return v
            return Value.blob(to_text(v).encode("utf-8"))
        # NUMERIC: a no-op on values that are already numeric; TEXT and BLOB
        # prefix-parse, preferring INTEGER when the value is integral.
        if v.t in (SQLType.INTEGER, SQLType.REAL):
            return v
        if v.t is SQLType.BOOLEAN:
            return Value.integer(1 if v.v else 0)
        num = to_numeric(v)
        assert num is not None
        if isinstance(num, int):
            return int_or_real(num)
        if not math.isinf(num) and not math.isnan(num) and \
                num == math.trunc(num) and fits_int64(int(num)) and \
                float(int(num)) == num:
            return Value.integer(int(num))
        return Value.real(num)

    # -- functions -----------------------------------------------------------
    def call(self, name: str, args: list[Value],
             first_arg_collation: str | None = None) -> Value:
        from repro.interp.functions import call_sqlite_function

        return call_sqlite_function(self, name, args, first_arg_collation)

    # -- row equality ------------------------------------------------------
    def values_equal(self, a: Value, b: Value) -> bool:
        """Equality used by INTERSECT/DISTINCT: NULLs are equal to each other."""
        an = a.t is SQLType.NULL
        bn = b.t is SQLType.NULL
        if an or bn:
            return an and bn
        return storage_compare(_debooleanize(a), _debooleanize(b)) == 0


def _debooleanize(v: Value) -> Value:
    """SQLite has no boolean storage class; normalize to INTEGER."""
    if v.t is SQLType.BOOLEAN:
        return Value.integer(1 if v.v else 0)
    return v


def _convert_right_numeric(lv: Value, rv: Value) -> tuple[Value, Value]:
    return lv, apply_numeric_affinity(rv)


def _convert_left_numeric(lv: Value, rv: Value) -> tuple[Value, Value]:
    return apply_numeric_affinity(lv), rv


def _convert_right_text(lv: Value, rv: Value) -> tuple[Value, Value]:
    return lv, apply_text_affinity(rv)


def _convert_left_text(lv: Value, rv: Value) -> tuple[Value, Value]:
    return apply_text_affinity(lv), rv


def _convert_none(lv: Value, rv: Value) -> tuple[Value, Value]:
    return _debooleanize(lv), _debooleanize(rv)


def _comparison_converter(left: Expr, right: Expr):
    """The affinity conversion a comparison of *left* and *right* applies,
    resolved from the operand expressions alone (SQLite §"Type Affinity")."""
    laff = expr_affinity(left)
    raff = expr_affinity(right)
    l_num = laff in NUMERIC_AFFINITIES
    r_num = raff in NUMERIC_AFFINITIES
    if l_num and not r_num:
        return _convert_right_numeric
    if r_num and not l_num:
        return _convert_left_numeric
    if laff == "TEXT" and raff not in ("TEXT",) and not r_num:
        return _convert_right_text
    if raff == "TEXT" and laff not in ("TEXT",) and not l_num:
        return _convert_left_text
    return _convert_none


_CMP_FUNCS = {
    BinaryOp.EQ: lambda cmp: cmp == 0,
    BinaryOp.NE: lambda cmp: cmp != 0,
    BinaryOp.LT: lambda cmp: cmp < 0,
    BinaryOp.LE: lambda cmp: cmp <= 0,
    BinaryOp.GT: lambda cmp: cmp > 0,
    BinaryOp.GE: lambda cmp: cmp >= 0,
}


def _cmp_result(op: BinaryOp, cmp: int) -> bool:
    if op is BinaryOp.EQ:
        return cmp == 0
    if op is BinaryOp.NE:
        return cmp != 0
    if op is BinaryOp.LT:
        return cmp < 0
    if op is BinaryOp.LE:
        return cmp <= 0
    if op is BinaryOp.GT:
        return cmp > 0
    if op is BinaryOp.GE:
        return cmp >= 0
    raise EvalError(f"not an ordering comparison: {op}")


def _shift_left(x: int, y: int) -> int:
    if y < 0:
        return _shift_right(x, -y) if y > -10_000 else (0 if x >= 0 else -1)
    if y >= 64:
        return 0
    return wrap_int64(x << y)


def _shift_right(x: int, y: int) -> int:
    if y < 0:
        return _shift_left(x, -y) if y > -10_000 else 0
    if y >= 64:
        return 0 if x >= 0 else -1
    return wrap_int64(x >> y)
