"""MySQL-style value semantics.

Models the axes on which the paper's MySQL bugs clustered (§4.5): implicit
string→number conversion in numeric contexts, unsigned 64-bit integers
(``CAST(x AS UNSIGNED)``), the null-safe ``<=>`` operator, and value-range
behaviour of narrow column types (clipping happens at INSERT time in the
engine; this module only defines operator semantics over values).

Simplifications (documented in DESIGN.md): the session is assumed to run
with ``PIPES_AS_CONCAT`` (so ``||`` is string concatenation, as SQLancer's
generated queries assume), string comparison uses an ASCII
case-insensitive collation standing in for ``*_ci``, and all integer math
is BIGINT math.
"""

from __future__ import annotations

import math

from repro.interp.base import EvalError, Semantics, Ternary
from repro.interp.patterns import like_match
from repro.sqlast.nodes import BinaryOp, Expr
from repro.values import (
    INT64_MAX,
    INT64_MIN,
    NULL,
    SQLType,
    Value,
    collate_nocase,
    compare_blobs,
    compare_numbers,
    fits_int64,
    format_real,
    numeric_prefix,
)

#: Shared comparison-result singletons (see sqlite_sem.bool_value).
_INT_ZERO = Value.integer(0)
_INT_ONE = Value.integer(1)

UINT64_MAX = 2**64 - 1


def to_text(v: Value) -> str:
    if v.t is SQLType.TEXT:
        return str(v.v)
    if v.t is SQLType.INTEGER:
        return str(v.v)
    if v.t is SQLType.REAL:
        return format_real(float(v.v))
    if v.t is SQLType.BLOB:
        return bytes(v.v).decode("utf-8", errors="replace")
    if v.t is SQLType.BOOLEAN:
        return "1" if v.v else "0"
    raise EvalError(f"cannot render {v!r} as text")


def to_double(v: Value) -> float | None:
    """MySQL's numeric-context coercion: strings convert via prefix parse."""
    if v.t is SQLType.NULL:
        return None
    if v.t is SQLType.INTEGER:
        return float(v.v)
    if v.t is SQLType.REAL:
        return float(v.v)
    if v.t is SQLType.BOOLEAN:
        return 1.0 if v.v else 0.0
    num, _ = numeric_prefix(to_text(v))
    return float(num)


def to_number(v: Value) -> int | float | None:
    """Like :func:`to_double` but preserves exact integers."""
    if v.t is SQLType.NULL:
        return None
    if v.t is SQLType.INTEGER:
        return v.v  # payload is always an exact int (Value.integer coerces)
    if v.t is SQLType.REAL:
        return float(v.v)
    if v.t is SQLType.BOOLEAN:
        return 1 if v.v else 0
    num, is_int = numeric_prefix(to_text(v))
    return int(num) if is_int else float(num)


class MySQLSemantics(Semantics):
    """MySQL dialect semantics (see module docstring)."""

    name = "mysql"

    # -- boolean context -----------------------------------------------------
    def to_bool(self, v: Value) -> Ternary:
        # Per-type dispatch instead of going through to_double: this is
        # the hottest predicate call in mysql hunts, and the common
        # INTEGER/REAL/BOOLEAN cases need no coercion machinery.
        t = v.t
        if t is SQLType.INTEGER:
            return v.v != 0
        if t is SQLType.REAL:
            # NaN != 0.0 is True, matching the to_double-based behavior.
            return float(v.v) != 0.0
        if t is SQLType.BOOLEAN:
            return bool(v.v)
        if t is SQLType.NULL:
            return None
        return to_double(v) != 0.0

    def bool_value(self, b: Ternary) -> Value:
        if b is None:
            return NULL
        return _INT_ONE if b else _INT_ZERO

    # -- comparisons -----------------------------------------------------------
    def compare(self, op: BinaryOp, left: Expr, lv: Value,
                right: Expr, rv: Value) -> Ternary:
        if op in (BinaryOp.NULL_SAFE_EQ, BinaryOp.IS, BinaryOp.IS_NOT):
            equal = self._null_safe_equal(lv, rv)
            return not equal if op is BinaryOp.IS_NOT else equal
        if lv.is_null or rv.is_null:
            return None
        cmp = self._cmp(lv, rv)
        return _cmp_result(op, cmp)

    def _null_safe_equal(self, lv: Value, rv: Value) -> bool:
        if lv.is_null and rv.is_null:
            return True
        if lv.is_null or rv.is_null:
            return False
        return self._cmp(lv, rv) == 0

    def compile_compare(self, op: BinaryOp, left: Expr,
                        right: Expr | None):
        """MySQL comparisons ignore the operand expressions (no affinity
        or collation resolution), so a site compiles to op dispatch done
        once plus the per-call null checks and ``_cmp``.

        Subclasses overriding :meth:`compare` (injected defects) fall
        back to the generic per-call path.
        """
        if type(self).compare is not MySQLSemantics.compare:
            return super().compile_compare(op, left, right)
        return self._compile_compare_mysql(op)

    def _compile_compare_mysql(self, op: BinaryOp):
        cmp = self._cmp
        null_t = SQLType.NULL
        if op in (BinaryOp.NULL_SAFE_EQ, BinaryOp.IS, BinaryOp.IS_NOT):
            negate = op is BinaryOp.IS_NOT

            def null_safe(lv: Value, rv: Value) -> bool:
                ln = lv.t is null_t
                rn = rv.t is null_t
                equal = (ln and rn) if (ln or rn) else cmp(lv, rv) == 0
                return not equal if negate else equal
            return null_safe
        result = _CMP_FUNCS[op]

        def ordered(lv: Value, rv: Value) -> Ternary:
            if lv.t is null_t or rv.t is null_t:
                return None
            return result(cmp(lv, rv))
        return ordered

    @staticmethod
    def _cmp(a: Value, b: Value) -> int:
        if a.t is SQLType.INTEGER and b.t is SQLType.INTEGER:
            # Dominant case: exact int comparison, no coercion machinery
            # (identical to compare_numbers on two ints).
            av = a.v
            bv = b.v
            return (av > bv) - (av < bv)
        if a.t is SQLType.TEXT and b.t is SQLType.TEXT:
            return collate_nocase(str(a.v), str(b.v))
        if a.t is SQLType.BLOB and b.t is SQLType.BLOB:
            return compare_blobs(bytes(a.v), bytes(b.v))
        if a.t is SQLType.BLOB or b.t is SQLType.BLOB:
            # Mixed blob comparison falls back to binary string comparison.
            ab = bytes(a.v) if a.t is SQLType.BLOB else to_text(a).encode()
            bb = bytes(b.v) if b.t is SQLType.BLOB else to_text(b).encode()
            return compare_blobs(ab, bb)
        an = to_number(a)
        bn = to_number(b)
        assert an is not None and bn is not None
        return compare_numbers(an, bn)

    # -- arithmetic ------------------------------------------------------------
    def arithmetic(self, op: BinaryOp, a: Value, b: Value) -> Value:
        x = to_number(a)
        y = to_number(b)
        if x is None or y is None:
            return NULL
        if op is BinaryOp.DIV:
            # MySQL / always produces an approximate result; /0 is NULL.
            if float(y) == 0.0:
                return NULL
            return _real_or_null(float(x) / float(y))
        if op is BinaryOp.MOD:
            if float(y) == 0.0:
                return NULL
            if isinstance(x, int) and isinstance(y, int):
                r = abs(x) % abs(y)
                return Value.integer(-r if x < 0 else r)
            fx = float(x)
            if math.isinf(fx) or math.isnan(fx):
                return NULL  # fmod(inf, y) is undefined
            return _real_or_null(math.fmod(fx, float(y)))
        if isinstance(x, int) and isinstance(y, int):
            result = {BinaryOp.ADD: x + y, BinaryOp.SUB: x - y,
                      BinaryOp.MUL: x * y}[op]
            if not (INT64_MIN <= result <= UINT64_MAX):
                raise EvalError("BIGINT value is out of range")
            return Value.integer(result)
        fx, fy = float(x), float(y)
        result = {BinaryOp.ADD: fx + fy, BinaryOp.SUB: fx - fy,
                  BinaryOp.MUL: fx * fy}[op]
        return _real_or_null(result)

    def bitwise(self, op: BinaryOp, a: Value, b: Value) -> Value:
        x = self._to_uint(a)
        y = self._to_uint(b)
        if x is None or y is None:
            return NULL
        if op is BinaryOp.BITAND:
            return Value.integer(x & y)
        if op is BinaryOp.BITOR:
            return Value.integer(x | y)
        if op is BinaryOp.SHL:
            return Value.integer((x << y) & UINT64_MAX if y < 64 else 0)
        if op is BinaryOp.SHR:
            return Value.integer(x >> y if y < 64 else 0)
        raise EvalError(f"not a bitwise op: {op}")

    @staticmethod
    def _to_uint(v: Value) -> int | None:
        num = to_double(v)
        if num is None:
            return None
        if math.isnan(num):
            return 0
        if math.isinf(num):
            return UINT64_MAX if num > 0 else 0
        i = int(num)
        return i % (2**64)

    def negate(self, v: Value) -> Value:
        num = to_number(v)
        if num is None:
            return NULL
        if isinstance(num, int):
            if not fits_int64(-num):
                raise EvalError("BIGINT value is out of range")
            return Value.integer(-num)
        return Value.real(-num)

    def bitnot(self, v: Value) -> Value:
        x = self._to_uint(v)
        if x is None:
            return NULL
        return Value.integer(x ^ UINT64_MAX)

    # -- strings -----------------------------------------------------------
    def concat(self, a: Value, b: Value) -> Value:
        if a.is_null or b.is_null:
            return NULL
        return Value.text(to_text(a) + to_text(b))

    def like(self, text: Value, pattern: Value) -> Ternary:
        if text.is_null or pattern.is_null:
            return None
        return like_match(to_text(text), to_text(pattern),
                          case_sensitive=False, escape="\\")

    def glob(self, text: Value, pattern: Value) -> Ternary:
        raise EvalError("GLOB is not supported by MySQL")

    # -- casts ------------------------------------------------------------
    def cast(self, v: Value, type_name: str) -> Value:
        if v.is_null:
            return NULL
        upper = type_name.upper()
        if upper == "SIGNED":
            num = to_number(v)
            assert num is not None
            i = int(num) if isinstance(num, int) else _mysql_round_int(num)
            return Value.integer(max(INT64_MIN, min(INT64_MAX, i)))
        if upper == "UNSIGNED":
            num = to_number(v)
            assert num is not None
            i = int(num) if isinstance(num, int) else _mysql_round_int(num)
            if i < 0:
                i = (i + 2**64) % (2**64)  # two's-complement reinterpretation
            return Value.integer(min(UINT64_MAX, i))
        if upper in ("CHAR", "TEXT"):
            return Value.text(to_text(v))
        if upper in ("DOUBLE", "FLOAT", "REAL"):
            num = to_double(v)
            assert num is not None
            return Value.real(num)
        if upper == "BINARY":
            return Value.blob(to_text(v).encode("utf-8"))
        raise EvalError(f"unknown CAST target: {type_name}")

    # -- functions -----------------------------------------------------------
    def call(self, name: str, args: list[Value],
             first_arg_collation: str | None = None) -> Value:
        from repro.interp.functions import MYSQL_FUNCTIONS, check_arity

        check_arity(MYSQL_FUNCTIONS, name, len(args))
        fn = name.upper()
        if fn == "COALESCE":
            for v in args:
                if not v.is_null:
                    return v
            return NULL
        if fn == "IFNULL":
            return args[0] if not args[0].is_null else args[1]
        if fn == "NULLIF":
            a, b = args
            if a.is_null or b.is_null:
                return a
            if self._cmp(a, b) == 0:
                return NULL
            return a
        if fn in ("LEAST", "GREATEST"):
            # MySQL returns NULL if any argument is NULL.
            if any(v.is_null for v in args):
                return NULL
            best = args[0]
            for v in args[1:]:
                cmp = self._cmp(v, best)
                if (fn == "LEAST" and cmp < 0) or (fn == "GREATEST" and cmp > 0):
                    best = v
            return best
        if fn == "ABS":
            num = to_number(args[0])
            if num is None:
                return NULL
            if isinstance(num, int):
                if not fits_int64(abs(num)):
                    raise EvalError("BIGINT value is out of range")
                return Value.integer(abs(num))
            return Value.real(abs(num))
        if fn == "LENGTH":
            v = args[0]
            if v.is_null:
                return NULL
            if v.t is SQLType.BLOB:
                return Value.integer(len(bytes(v.v)))
            return Value.integer(len(to_text(v).encode("utf-8")))
        if fn in ("LOWER", "UPPER"):
            v = args[0]
            if v.is_null:
                return NULL
            text = to_text(v)
            return Value.text(text.lower() if fn == "LOWER" else text.upper())
        if fn == "INSTR":
            a, b = args
            if a.is_null or b.is_null:
                return NULL
            return Value.integer(
                to_text(a).lower().find(to_text(b).lower()) + 1)
        if fn == "ROUND":
            num = to_double(args[0])
            if num is None:
                return NULL
            if math.isinf(num) or math.isnan(num):
                return _real_or_null(num)
            digits = 0
            if len(args) == 2:
                d = to_double(args[1])
                if d is None:
                    return NULL
                digits = int(d)
            scale = 10.0 ** digits
            scaled = num * scale
            out = math.floor(scaled + 0.5) if scaled >= 0 else \
                math.ceil(scaled - 0.5)
            result = out / scale
            if args[0].t is SQLType.INTEGER and digits >= 0:
                return Value.integer(int(result))
            return Value.real(result)
        if fn == "SUBSTR":
            from repro.interp.functions import _substr

            return _substr(args)
        raise EvalError(f"no such function: {name}")

    # -- row equality ------------------------------------------------------
    def values_equal(self, a: Value, b: Value) -> bool:
        an = a.t is SQLType.NULL
        bn = b.t is SQLType.NULL
        if an or bn:
            return an and bn
        return self._cmp(a, b) == 0


def _real_or_null(f: float) -> Value:
    """MySQL stores no NaN: undefined float results collapse to NULL."""
    if math.isnan(f):
        return NULL
    return Value.real(f)


def _mysql_round_int(f: float) -> int:
    """MySQL rounds (not truncates) when casting a double to an integer;
    infinities saturate past the integer range and are clamped by the
    cast's own range limits."""
    if math.isnan(f):
        return 0
    if math.isinf(f):
        return 2**64 if f > 0 else -(2**64)
    if f >= 0:
        return math.floor(f + 0.5)
    return math.ceil(f - 0.5)


_CMP_FUNCS = {
    BinaryOp.EQ: lambda cmp: cmp == 0,
    BinaryOp.NE: lambda cmp: cmp != 0,
    BinaryOp.LT: lambda cmp: cmp < 0,
    BinaryOp.LE: lambda cmp: cmp <= 0,
    BinaryOp.GT: lambda cmp: cmp > 0,
    BinaryOp.GE: lambda cmp: cmp >= 0,
}


def _cmp_result(op: BinaryOp, cmp: int) -> bool:
    if op is BinaryOp.EQ:
        return cmp == 0
    if op is BinaryOp.NE:
        return cmp != 0
    if op is BinaryOp.LT:
        return cmp < 0
    if op is BinaryOp.LE:
        return cmp <= 0
    if op is BinaryOp.GT:
        return cmp > 0
    if op is BinaryOp.GE:
        return cmp >= 0
    raise EvalError(f"not an ordering comparison: {op}")
