"""Multi-plan differential replay: does a test case still diverge?

The campaign's reducer needs a *predicate* that is true exactly while a
candidate test case keeps manifesting its defect.  For containment and
error findings that predicate is buggy-vs-clean disagreement
(:class:`repro.campaigns.replay.DifferentialReplayer`).  A multi-plan
finding is different: the defect manifests as *plan-vs-plan*
disagreement on one engine, so the predicate replays the case's final
query under the same forcing hints that exposed it and checks that

* the buggy engine's plans still disagree with each other, and
* a clean engine's plans do **not** — plan forcing must be
  behavior-preserving on a correct engine, so any clean-engine
  divergence means the disagreement is not the injected defect's.

Attribution replays against single-defect engines exactly like the
differential replayer does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import DBCrash, DBError
from repro.minidb.bugs import BugRegistry
from repro.multiplan.hints import PlannerHints
from repro.multiplan.oracle import _canonical

if TYPE_CHECKING:  # both import this package; avoid the cycles.
    from repro.core.reports import TestCase


class MultiPlanReplayer:
    """Replays forced-plan executions against buggy and clean MiniDB."""

    def __init__(self, dialect: str, bugs: BugRegistry):
        self.dialect = dialect
        self.bugs = bugs

    # -- predicates ---------------------------------------------------------
    def diverges(self, test_case: TestCase,
                 hints_list: list[PlannerHints]) -> bool:
        """The reducer's failure predicate: forced plans disagree on the
        buggy engine and agree on the clean one."""
        return (self._diverges_under(BugRegistry(set(self.bugs.enabled)),
                                     test_case, hints_list)
                and not self._diverges_under(BugRegistry(), test_case,
                                             hints_list))

    def attribute(self, test_case: TestCase,
                  hints_list: list[PlannerHints],
                  candidates: Optional[list[str]] = None) -> list[str]:
        """Injected defects that individually reproduce the divergence."""
        attributed = []
        for bug_id in (candidates if candidates is not None
                       else sorted(self.bugs.enabled)):
            if self._diverges_under(BugRegistry({bug_id}), test_case,
                                    hints_list):
                attributed.append(bug_id)
        return attributed

    # -- execution ----------------------------------------------------------
    def _diverges_under(self, bugs: BugRegistry, test_case: TestCase,
                        hints_list: list[PlannerHints]) -> bool:
        from repro.adapters.minidb_adapter import MiniDBConnection

        connection = MiniDBConnection(self.dialect, bugs=bugs)
        final = test_case.statements[-1]
        for sql in test_case.statements[:-1]:
            try:
                connection.execute(sql)
            except DBCrash:
                return False
            except DBError:
                continue  # prefix statements may legitimately fail
        outcomes = set()
        for hints in hints_list:
            try:
                rows, _steps = connection.with_plan(final, hints)
            except DBCrash:
                return False
            except DBError:
                continue  # an infeasible forced plan is not a divergence
            outcomes.add(_canonical(rows, weak=False))
        return len(outcomes) > 1
