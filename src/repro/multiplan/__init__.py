"""``repro.multiplan`` — the multi-plan differential execution oracle.

Plan-forcing knobs (:class:`PlannerHints`, mapped to MiniDB planner
hints and sqlite ``INDEXED BY``/``NOT INDEXED``/``ANALYZE``), the
differential harness (:class:`MultiPlanOracle`) that executes each
synthesized query under every distinct feasible plan and demands row-
multiset agreement, and the replayer the campaign uses to reduce and
attribute its findings.  Off by default everywhere:
:data:`NULL_MULTIPLAN` follows the telemetry/guidance null-object
pattern, and a hunt without ``--multiplan`` is bit-identical to one run
before this package existed.

Usage::

    from repro.multiplan import MultiPlanOracle

    oracle = MultiPlanOracle(telemetry=t)
    divergence = oracle.check(connection, query, semantics)
    if divergence is not None:
        print(divergence.message)
"""

from repro.multiplan.hints import BASELINE, PlannerHints
from repro.multiplan.oracle import (
    Divergence,
    MultiPlanOracle,
    NULL_MULTIPLAN,
    NullMultiPlan,
    PlanRun,
)
from repro.multiplan.replay import MultiPlanReplayer

__all__ = [
    "BASELINE", "Divergence", "MultiPlanOracle", "MultiPlanReplayer",
    "NULL_MULTIPLAN", "NullMultiPlan", "PlanRun", "PlannerHints",
]
