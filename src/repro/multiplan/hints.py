"""Plan-forcing knobs for multi-plan differential execution.

A :class:`PlannerHints` value describes *which* plan the target should
use for one query, in engine-neutral terms.  MiniDB honors the hints
directly in its planner (``choose_path``/``rewrite`` take a ``hints``
argument); the sqlite3 adapter maps them onto the engine's native
knobs — ``INDEXED BY`` / ``NOT INDEXED`` clause injection and a
transient ``ANALYZE`` — so the same hint value forces the analogous
plan on both targets.

Hints are deliberately tiny, immutable, and picklable: they cross the
subprocess adapter's pipe next to the SQL text, and they are serialized
into :class:`~repro.core.reports.BugReport.plan_results` so a reduced
repro still knows which plans diverged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DBError


@dataclass(frozen=True, slots=True)
class PlannerHints:
    """One forced-plan configuration for a single query execution.

    All knobs default to "leave the planner alone", so
    ``PlannerHints()`` is the unforced baseline plan.
    """

    #: Force a sequential scan of every table (sqlite: ``NOT INDEXED``).
    force_full_scan: bool = False
    #: Force the named index on its owning table (sqlite:
    #: ``INDEXED BY``).  Tables the index does not belong to are
    #: planned normally.
    force_index: Optional[str] = None
    #: Suppress the LIKE optimization family of rewrites.
    no_like_opt: bool = False
    #: ``True`` runs the query as if ANALYZE statistics exist (MiniDB:
    #: every table temporarily marked analyzed; sqlite3: a transient
    #: ``ANALYZE`` rolled back afterwards).  ``False`` forces the
    #: pre-ANALYZE planner.  ``None`` leaves statistics as they are.
    analyze: Optional[bool] = None

    def validate(self) -> None:
        """Reject self-contradictory hint combinations."""
        if self.force_full_scan and self.force_index:
            raise DBError(
                "contradictory planner hints: force_full_scan and "
                f"force_index={self.force_index!r} cannot both be set")

    @property
    def is_baseline(self) -> bool:
        return self == PlannerHints()

    def describe(self) -> str:
        """Short human label, e.g. ``index:i0+analyze``."""
        parts = []
        if self.force_full_scan:
            parts.append("full-scan")
        if self.force_index:
            parts.append(f"index:{self.force_index}")
        if self.no_like_opt:
            parts.append("no-like-opt")
        if self.analyze is not None:
            parts.append("analyze" if self.analyze else "no-analyze")
        return "+".join(parts) or "baseline"

    # -- serialization (BugReport.plan_results / journal rounds) -------------
    def as_dict(self) -> dict:
        """Compact JSON form: only non-default knobs appear."""
        out: dict = {}
        if self.force_full_scan:
            out["force_full_scan"] = True
        if self.force_index is not None:
            out["force_index"] = self.force_index
        if self.no_like_opt:
            out["no_like_opt"] = True
        if self.analyze is not None:
            out["analyze"] = self.analyze
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PlannerHints":
        return cls(
            force_full_scan=bool(data.get("force_full_scan", False)),
            force_index=data.get("force_index"),
            no_like_opt=bool(data.get("no_like_opt", False)),
            analyze=data.get("analyze"))


#: The unforced plan, shared (hints are immutable).
BASELINE = PlannerHints()
