"""The multi-plan differential execution oracle.

PQS's pivot-containment oracle checks one fact about one execution: the
pivot row is in the result.  A planner defect that corrupts the result
*consistently* — every plan the planner would freely choose returns the
same wrong rows, pivot included — slips through.  This oracle closes
that gap by making the plan a controlled variable: for each synthesized
query it enumerates the feasible plans the target can be forced into
(:class:`~repro.multiplan.hints.PlannerHints` via the adapters'
``with_plan`` hook), executes each one, and demands that every plan
agree on the full row multiset.

Three properties keep it sound and cheap:

* **fingerprint dedup** — forced candidates that land on a plan already
  executed (by :func:`repro.guidance.fingerprint.fingerprint`) are
  dropped, so the cross-check only pays for *distinct* plans;
* **interpreter arbitration** — when plans disagree, the AST
  interpreter's verdict (the pivot row, computed without any planner)
  singles out which side is wrong: a plan that loses or invents the
  pivot row is deviant; when the pivot cannot arbitrate, the baseline
  (unforced) plan is presumed correct and differing plans are flagged;
* **determinism** — candidate enumeration is RNG-free and sorted, and
  forced executions go through ``with_plan``/``index_candidates`` only,
  which are never logged into replay journals and never advance fault
  schedules, so enabling the oracle leaves the tested statement stream
  bit-identical.

DISTINCT and aggregate queries compare under a *weakened* multiset
(case-folded text): their surviving representative row legitimately
depends on scan order under non-binary collations, which is exactly the
freedom plan forcing exercises.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import DBCrash, DBError
from repro.guidance.fingerprint import fingerprint
from repro.multiplan.hints import BASELINE, PlannerHints
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry import names as metric_names
from repro.values import SQLType, Value

if TYPE_CHECKING:  # repro.core imports this module; avoid the cycle.
    from repro.core.querygen import SynthesizedQuery
    from repro.interp.base import Semantics


@dataclass
class PlanRun:
    """One distinct plan's execution of the query under test."""

    hints: PlannerHints
    fingerprint: str
    rows: list
    canonical: tuple
    deviant: bool = False
    #: Min-of-k elapsed seconds, set only under ``--plan-timing``.
    elapsed: Optional[float] = None

    def digest(self) -> str:
        body = "\x1e".join("\x1f".join(row) for row in self.canonical)
        return hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]

    def as_result(self) -> dict:
        """The JSON-safe ``plan_results`` entry for a BugReport."""
        out = {"hints": self.hints.as_dict(),
               "fingerprint": self.fingerprint,
               "rows": len(self.rows), "digest": self.digest(),
               "deviant": self.deviant}
        if self.elapsed is not None:
            out["elapsed_us"] = round(self.elapsed * 1e6, 2)
        return out


@dataclass
class Divergence:
    """Two or more distinct plans returned different row multisets."""

    runs: list[PlanRun]
    message: str

    def plan_results(self) -> list[dict]:
        return [run.as_result() for run in self.runs]


class NullMultiPlan:
    """Off-is-free stand-in: no candidates, no executions, no state."""

    __slots__ = ()
    enabled = False

    def check(self, connection, query, semantics) -> None:
        return None

    def take_round_outcome(self) -> dict:
        return {}


NULL_MULTIPLAN = NullMultiPlan()


class MultiPlanOracle:
    """Enumerate, force, execute, and cross-check plans per query."""

    enabled = True

    def __init__(self, telemetry: Optional[Telemetry] = None,
                 timer=None):
        from repro.plantime.collector import NULL_PLAN_TIMER

        t = telemetry or NULL_TELEMETRY
        #: The per-plan timing collector (``--plan-timing``); the null
        #: timer keeps the hot path free of clock calls when off.
        self.timer = timer if timer is not None else NULL_PLAN_TIMER
        self._m_queries = t.counter(metric_names.MULTIPLAN_QUERIES)
        self._m_plans = t.histogram(
            metric_names.MULTIPLAN_PLANS_PER_QUERY,
            buckets=metric_names.COUNT_BUCKETS)
        self._m_divergences = t.counter(
            metric_names.MULTIPLAN_DIVERGENCES)
        self._m_failures = t.counter(
            metric_names.MULTIPLAN_FORCED_FAILURES)
        self._round_queries = 0
        self._round_divergences = 0
        self._round_failures = 0
        self._round_plans: dict[int, int] = {}

    # -- the oracle ---------------------------------------------------------
    def check(self, connection, query: SynthesizedQuery,
              semantics: Semantics) -> Optional[Divergence]:
        """Cross-check *query* across every distinct feasible plan.

        Returns a :class:`Divergence` when two plans disagree, ``None``
        when all plans agree or the target offers no plan forcing.
        """
        with_plan = getattr(connection, "with_plan", None)
        if with_plan is None:
            return None
        weak = query.distinct or query.uses_aggregates
        runs: list[PlanRun] = []
        seen: set[tuple] = set()
        for hints in self._candidates(connection, query):
            try:
                rows, steps = with_plan(query.sql, hints)
            except DBError:
                self._round_failures += 1
                self._m_failures.inc()
                continue
            except DBCrash:
                # A forced run is introspection; a crash during one is
                # the harness's problem (restart), not a finding the
                # unforced stream could replay.
                self._round_failures += 1
                self._m_failures.inc()
                continue
            fp = fingerprint(steps)
            # Dedup by fingerprint *within one statistics state*: the
            # fingerprint captures plan shape, and ANALYZE changes the
            # planner's input rather than the shape, so a pre- and a
            # post-ANALYZE run of the same shape are distinct plans.
            key = (fp, hints.analyze)
            if key in seen:
                continue
            seen.add(key)
            run = PlanRun(hints=hints, fingerprint=fp, rows=rows,
                          canonical=_canonical(rows, weak))
            if self.timer.enabled:
                run.elapsed = self.timer.sample(query.sql, hints,
                                                with_plan)
            runs.append(run)
        self._round_queries += 1
        self._m_queries.inc()
        self._round_plans[len(runs)] = \
            self._round_plans.get(len(runs), 0) + 1
        self._m_plans.observe(len(runs))
        self.timer.observe_query(query.sql, runs)
        if len(runs) < 2:
            return None
        if len({run.canonical for run in runs}) == 1:
            return None
        self._round_divergences += 1
        self._m_divergences.inc()
        self._arbitrate(runs, query, semantics, connection.dialect)
        deviants = [run for run in runs if run.deviant]
        message = (
            f"multi-plan divergence on {len(runs)} plans "
            f"({len(deviants)} deviant): "
            + "; ".join(f"{run.hints.describe()} -> {len(run.rows)} rows"
                        for run in runs))
        return Divergence(runs=runs, message=message)

    def take_round_outcome(self) -> dict:
        """Drain this round's counters into a journal-ready dict."""
        if self._round_queries == 0 and self._round_failures == 0:
            return {}
        outcome = {
            "queries": self._round_queries,
            "divergences": self._round_divergences,
            "forced_failures": self._round_failures,
            "plans": {str(k): v
                      for k, v in sorted(self._round_plans.items())},
        }
        self._round_queries = 0
        self._round_divergences = 0
        self._round_failures = 0
        self._round_plans = {}
        return outcome

    # -- internals ----------------------------------------------------------
    def _candidates(self, connection,
                    query: SynthesizedQuery) -> list[PlannerHints]:
        """Deterministic, RNG-free enumeration: baseline first, then the
        forcing knobs in a fixed order, then one forced-index candidate
        per explicit index on the query's tables (sorted by name)."""
        out = [BASELINE,
               PlannerHints(force_full_scan=True),
               PlannerHints(force_full_scan=True, analyze=True),
               PlannerHints(no_like_opt=True)]
        index_fn = getattr(connection, "index_candidates", None)
        if index_fn is not None:
            try:
                names = index_fn(list(query.table_names))
            except (DBError, DBCrash):
                names = []
            for name in names:
                out.append(PlannerHints(force_index=name))
        return out

    @staticmethod
    def _arbitrate(runs: list[PlanRun], query: SynthesizedQuery,
                   semantics: Semantics, dialect: str) -> None:
        """Mark deviant runs.

        The interpreter's pivot verdict is exact: for a positive query
        the pivot row must appear in every plan's result, for a negative
        query it must appear in none.  Runs that violate it are deviant.
        If the pivot cannot discriminate (every run passes), fall back
        to presuming the baseline (first) run correct."""
        from repro.core.containment import rows_contain_pivot

        verdicts = []
        for run in runs:
            contains = rows_contain_pivot(run.rows, query, semantics,
                                          dialect)
            ok = (not contains) if query.negative else contains
            verdicts.append(ok)
        if any(verdicts) and not all(verdicts):
            for run, ok in zip(runs, verdicts):
                run.deviant = not ok
            return
        reference = runs[0].canonical
        for run in runs[1:]:
            if run.canonical != reference:
                run.deviant = True


def _canonical(rows: list, weak: bool) -> tuple:
    """Order-insensitive, process-stable multiset key for *rows*.

    Exact by default; *weak* (DISTINCT/aggregate queries) case-folds
    TEXT so collation-dependent representative choice does not count as
    a divergence."""
    keys = sorted(tuple(_value_key(v, weak) for v in row) for row in rows)
    return tuple(keys)


def _value_key(value: Value, weak: bool) -> str:
    v = value.v
    if isinstance(v, float) and v != v:
        return f"{value.t.value}:nan"
    if weak and value.t is SQLType.TEXT:
        return f"{value.t.value}:{str(v).casefold()!r}"
    return f"{value.t.value}:{v!r}"
