"""Exception hierarchy shared across the PQS reproduction.

Three families of errors matter to the oracles described in the paper:

* errors raised by the system under test while executing SQL
  (:class:`DBError` and subclasses) — these feed the *error oracle*;
* a simulated hard crash (:class:`DBCrash`) — this feeds the *crash oracle*;
* errors in the testing tool itself (:class:`PQSError` and subclasses),
  which are never attributed to the system under test.
"""

from __future__ import annotations


class PQSError(Exception):
    """Base class for errors raised by the testing tool itself."""


class GenerationError(PQSError):
    """Random generation could not produce a valid artifact.

    Raised, for example, when a dialect offers no operator producing the
    requested type at the requested depth.  Callers typically retry with a
    fresh random draw.
    """


class OracleError(PQSError):
    """The oracle machinery was used incorrectly (a tool bug, not a DBMS bug)."""


class ReductionError(PQSError):
    """Test-case reduction failed to preserve the failure it was given."""


class HarnessError(PQSError):
    """The fault-isolation harness could not keep a target alive.

    Raised when the subprocess harness exhausts its restart budget —
    e.g. the target crashes during every state-restoring replay.  This
    is an availability failure of the *harness*, distinct from the
    per-statement :class:`DBCrash`/:class:`DBTimeout` signals the
    oracles consume.
    """


class DBError(Exception):
    """An error reported by a system under test while executing a statement.

    ``message`` mirrors what a DBMS would print (e.g. ``UNIQUE constraint
    failed: t0.c0``).  The error oracle classifies instances as *expected*
    (part of normal operation under random statement generation) or
    *unexpected* (a bug, e.g. database corruption).
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class ParseError(DBError):
    """The engine could not parse the statement text."""


class CatalogError(DBError):
    """Schema-level failure: unknown table/column, duplicate name, etc."""


class TypeError_(DBError):
    """Type-system failure (strict dialects): operator does not exist, etc."""


class ConstraintError(DBError):
    """A constraint (UNIQUE, PRIMARY KEY, NOT NULL) rejected a modification."""


class IntegrityError(DBError):
    """Internal integrity failure — the engine detected its own state is broken.

    This is the MiniDB analogue of SQLite's ``database disk image is
    malformed``: always unexpected, always a bug.
    """


class UnsupportedError(DBError):
    """The statement uses a feature the engine does not implement."""


class DBTimeout(DBError):
    """The watchdog deadline expired while a statement was executing.

    Raised by fault-isolated adapters when the target fails to answer
    within the configured per-statement budget — the moral equivalent of
    an infinite-loop query.  A timeout is *not* an error-oracle finding
    (hangs are availability problems, not wrong-result logic bugs), so
    :class:`~repro.core.error_oracle.ErrorOracle` classifies it as
    expected and :class:`~repro.core.reports.RunStatistics` counts it in
    a dedicated ``timeouts`` column rather than among errors.
    """

    def __init__(self, message: str = "statement deadline exceeded"):
        super().__init__(message)


class DBCrash(BaseException):
    """Simulated hard crash (SEGFAULT) of the system under test.

    Deliberately derived from :class:`BaseException` so that generic
    ``except Exception`` blocks inside the engine cannot swallow it, the
    same way a real segfault cannot be caught by the crashing process.
    """

    def __init__(self, message: str = "simulated segfault"):
        super().__init__(message)
        self.message = message
