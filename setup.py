"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, which setuptools'
PEP 660 editable-install backend requires; keeping a ``setup.py`` lets
``pip install -e .`` use the legacy ``setup.py develop`` path instead.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
